"""Storage, latency, and energy overhead models for per-word codes.

These models reproduce the methodology of the paper's Figures 1 and 7:

* **Storage** — check bits per word, measured relative to the data bits
  ("Extra Memory Storage" in Fig. 1(b)).  The check-bit counts come from
  the actual code constructions in this package, which match the paper's
  Hamming-distance-based estimates (e.g. (72,64) SECDED, (121,64) OECNED).
* **Coding latency** — estimated, as in the paper, as the depth of the
  syndrome generation and comparison circuit: an XOR tree per check bit
  computed in parallel (depth ``ceil(log2(fan-in))``) followed by an OR
  tree across the check bits (depth ``ceil(log2(check_bits))``), plus a
  correction stage for correcting codes.
* **Energy** — energy to read and compute the check bits, modelled as the
  sum of (a) array read energy for the extra check-bit columns and (b) the
  switching energy of the XOR tree, both proportional to the number of
  two-input gates involved.  Absolute joules are not meaningful here; all
  figures in the paper are normalized, and so are ours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import WordCode
from .bch import DectedCode, OecnedCode, QecpedCode
from .hamming import SecdedCode
from .parity import InterleavedParityCode

__all__ = [
    "CodeOverhead",
    "code_overhead",
    "standard_codes",
    "xor_tree_depth",
    "xor_tree_gates",
]


def xor_tree_depth(fan_in: int) -> int:
    """Logic depth (in 2-input XOR levels) of an XOR tree over ``fan_in`` bits."""
    if fan_in <= 1:
        return 0
    return math.ceil(math.log2(fan_in))


def xor_tree_gates(fan_in: int) -> int:
    """Number of 2-input XOR gates in a balanced XOR tree."""
    return max(fan_in - 1, 0)


@dataclass(frozen=True)
class CodeOverhead:
    """Overhead summary for one per-word code applied to one word size."""

    name: str
    data_bits: int
    check_bits: int
    #: Extra storage as a fraction of the data bits (Fig. 1(b) y-axis).
    storage_overhead: float
    #: Syndrome-generation + detection logic depth in gate levels.
    coding_latency_levels: int
    #: Additional levels needed to locate and correct erroneous bits.
    correction_latency_levels: int
    #: Relative energy of computing/checking the code on a read (arbitrary
    #: units: number of switched 2-input gates plus check-bit column reads).
    coding_energy: float

    @property
    def total_latency_levels(self) -> int:
        return self.coding_latency_levels + self.correction_latency_levels


def _correction_levels(code: WordCode) -> int:
    """Extra logic levels to decode the syndrome into bit flips.

    Detection-only codes need none.  SECDED needs a syndrome decoder (one
    level of AND decode plus the correcting XOR).  BCH codes of strength t
    need an iterative/unrolled solver whose depth grows with t; the paper
    treats this as part of the "coding latency" bar in Fig. 7, growing with
    code strength.
    """
    if code.correct_bits == 0:
        return 0
    if code.correct_bits == 1:
        return 2
    # Berlekamp-Massey style solving: roughly 2t iterations of a
    # multiply-accumulate, each a few gate levels deep, plus Chien search
    # decode — modelled as 4 levels per correctable bit.
    return 4 * code.correct_bits


def code_overhead(code: WordCode) -> CodeOverhead:
    """Compute the overhead summary of a concrete :class:`WordCode`."""
    data_bits = code.data_bits
    check_bits = code.check_bits

    if isinstance(code, InterleavedParityCode):
        fan_in_per_check = math.ceil(data_bits / check_bits)
    elif isinstance(code, SecdedCode):
        # Each Hamming parity bit covers roughly half the data bits.
        fan_in_per_check = math.ceil(data_bits / 2)
    else:
        # BCH parity bits are dense: nearly every data bit feeds every
        # check bit through the generator-polynomial division network.
        fan_in_per_check = data_bits

    syndrome_depth = xor_tree_depth(fan_in_per_check)
    # Comparison / zero-detection across check bits (OR tree).
    compare_depth = xor_tree_depth(check_bits) if check_bits > 1 else 1
    coding_latency = syndrome_depth + compare_depth
    correction_latency = _correction_levels(code)

    # Energy: XOR-tree switching for every check bit plus reading the
    # check-bit columns out of the array (1 unit per check bit).
    xor_energy = check_bits * xor_tree_gates(fan_in_per_check)
    column_read_energy = check_bits * data_bits / 8.0
    coding_energy = xor_energy + column_read_energy

    return CodeOverhead(
        name=code.name,
        data_bits=data_bits,
        check_bits=check_bits,
        storage_overhead=check_bits / data_bits,
        coding_latency_levels=coding_latency,
        correction_latency_levels=correction_latency,
        coding_energy=coding_energy,
    )


def standard_codes(data_bits: int) -> dict[str, WordCode]:
    """The code family evaluated in Fig. 1 for a given word size.

    Returns EDC8, SECDED, DECTED, QECPED and OECNED instances keyed by the
    paper's names.
    """
    return {
        "EDC8": InterleavedParityCode(data_bits, interleave=8),
        "SECDED": SecdedCode(data_bits),
        "DECTED": DectedCode(data_bits),
        "QECPED": QecpedCode(data_bits),
        "OECNED": OecnedCode(data_bits),
    }
