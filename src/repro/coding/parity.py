"""Bit-interleaved parity codes (EDCn) and plain byte parity.

The paper's light-weight horizontal and vertical codes are *interleaved
parity* codes, written ``EDCn``::

    parity_bit[i] = XOR(data_bit[i], data_bit[i + n], data_bit[i + 2n], ...)

``EDCn`` stores ``n`` check bits per word and detects any error burst that
spans at most ``n`` contiguous bit positions, because two flipped bits can
only cancel in the same parity group if they are a multiple of ``n``
positions apart.

The same construction is used vertically: ``EDC32`` across the rows of a
cache bank keeps 32 parity rows, with data row *r* participating in parity
row ``r % 32``.  That usage lives in :mod:`repro.array.twod_array`; this
module only provides the per-word code.
"""

from __future__ import annotations

import numpy as np

from .base import CodeStatus, DecodeResult, WordCode

__all__ = ["InterleavedParityCode", "ByteParityCode"]


class InterleavedParityCode(WordCode):
    """``EDCn``: n-way bit-interleaved parity over a data word.

    Parameters
    ----------
    data_bits:
        Width of the protected data word.
    interleave:
        ``n`` — the number of parity groups (and stored check bits).

    Notes
    -----
    The code is detection-only: :meth:`decode` never modifies the data and
    reports :attr:`CodeStatus.DETECTED_UNCORRECTABLE` whenever any parity
    group disagrees.  Correction is the vertical code's job in a 2D scheme.
    """

    def __init__(self, data_bits: int, interleave: int):
        super().__init__(data_bits)
        if interleave <= 0:
            raise ValueError("interleave must be positive")
        if interleave > data_bits:
            raise ValueError(
                f"interleave ({interleave}) cannot exceed data_bits ({data_bits})"
            )
        self._interleave = int(interleave)
        self.name = f"EDC{self._interleave}"

    # ------------------------------------------------------------------
    @property
    def interleave(self) -> int:
        """Number of interleaved parity groups (``n`` in ``EDCn``)."""
        return self._interleave

    @property
    def check_bits(self) -> int:
        return self._interleave

    @property
    def detect_bits(self) -> int:
        """EDCn detects any contiguous burst of up to n flipped bits."""
        return self._interleave

    @property
    def correct_bits(self) -> int:
        return 0

    # ------------------------------------------------------------------
    def group_of(self, bit_position: int) -> int:
        """Parity group (check-bit index) a data bit belongs to."""
        if not 0 <= bit_position < self.data_bits:
            raise ValueError(f"bit position {bit_position} out of range")
        return bit_position % self._interleave

    def encode(self, data: np.ndarray) -> np.ndarray:
        data = self._validate_word(data)
        check = np.zeros(self._interleave, dtype=np.uint8)
        for group in range(self._interleave):
            check[group] = np.bitwise_xor.reduce(data[group :: self._interleave])
        return check

    def decode(self, data: np.ndarray, check: np.ndarray) -> DecodeResult:
        data = self._validate_word(data)
        check = self._validate_check(check)
        syndrome = np.bitwise_xor(self.encode(data), check)
        if not syndrome.any():
            return DecodeResult(data=data.copy(), status=CodeStatus.CLEAN)
        return DecodeResult(
            data=data.copy(),
            status=CodeStatus.DETECTED_UNCORRECTABLE,
            syndrome_nonzero=True,
        )

    def syndrome(self, data: np.ndarray, check: np.ndarray) -> np.ndarray:
        """Return the per-group parity disagreement vector."""
        data = self._validate_word(data)
        check = self._validate_check(check)
        return np.bitwise_xor(self.encode(data), check)

    def error_candidates(
        self, data: np.ndarray, check: np.ndarray
    ) -> "tuple[int, ...] | None":
        """All codeword positions belonging to a violated parity group."""
        syndrome = self.syndrome(data, check)
        violated = [int(g) for g in np.nonzero(syndrome)[0]]
        if not violated:
            return ()
        candidates: list[int] = []
        for position in range(self.data_bits):
            if self.group_of(position) in violated:
                candidates.append(position)
        for group in violated:
            candidates.append(self.data_bits + group)
        return tuple(candidates)


class ByteParityCode(InterleavedParityCode):
    """Per-byte parity, the code used by timing-critical L1 caches.

    Byte parity stores one parity bit per 8 data bits.  It is equivalent in
    storage to EDC8 but groups bits *contiguously* (bit ``i`` belongs to
    byte ``i // 8``), so it only guarantees detection of single-bit errors
    per byte (any odd number of flips inside one byte).  The paper uses it
    as the latency reference point for EDC8.
    """

    def __init__(self, data_bits: int):
        if data_bits % 8 != 0:
            raise ValueError("byte parity requires a multiple of 8 data bits")
        super().__init__(data_bits, interleave=data_bits // 8)
        self.name = "ByteParity"

    @property
    def detect_bits(self) -> int:
        """Guaranteed detection: any single-bit error (one per byte)."""
        return 1

    def group_of(self, bit_position: int) -> int:
        if not 0 <= bit_position < self.data_bits:
            raise ValueError(f"bit position {bit_position} out of range")
        return bit_position // 8

    def encode(self, data: np.ndarray) -> np.ndarray:
        data = self._validate_word(data)
        n_bytes = self.data_bits // 8
        return np.array(
            [np.bitwise_xor.reduce(data[b * 8 : (b + 1) * 8]) for b in range(n_bytes)],
            dtype=np.uint8,
        )
