"""Finite-field arithmetic over GF(2^m) used by the BCH codes.

The multi-bit correcting codes evaluated in the paper (DECTED, QECPED,
OECNED) are t-error-correcting binary BCH codes.  Their construction and
decoding require arithmetic in GF(2^m):

* element representation as integers whose bits are polynomial
  coefficients over GF(2),
* multiplication/inversion via log/antilog tables built from a primitive
  polynomial,
* minimal polynomials of powers of the primitive element (for the
  generator polynomial), and
* polynomial evaluation (for syndromes and the Chien search).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["GF2m", "PRIMITIVE_POLYNOMIALS"]

#: Conway-style primitive polynomials for GF(2^m), expressed as integer
#: bit masks (x^m term included).  Index by m.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    2: 0b111,              # x^2 + x + 1
    3: 0b1011,             # x^3 + x + 1
    4: 0b10011,            # x^4 + x + 1
    5: 0b100101,           # x^5 + x^2 + 1
    6: 0b1000011,          # x^6 + x + 1
    7: 0b10001001,         # x^7 + x^3 + 1
    8: 0b100011101,        # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,       # x^9 + x^4 + 1
    10: 0b10000001001,     # x^10 + x^3 + 1
    11: 0b100000000101,    # x^11 + x^2 + 1
    12: 0b1000001010011,   # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,  # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011, # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011,  # x^16 + x^12 + x^3 + x + 1
}


class GF2m:
    """Arithmetic in the finite field GF(2^m).

    Elements are represented as integers in ``[0, 2^m)``.  The class
    pre-computes exponential and logarithm tables so multiplication,
    division and inversion are table lookups.
    """

    def __init__(self, m: int):
        if m not in PRIMITIVE_POLYNOMIALS:
            raise ValueError(f"no primitive polynomial registered for m={m}")
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1  # multiplicative group order
        self.prim_poly = PRIMITIVE_POLYNOMIALS[m]

        exp = np.zeros(2 * self.order, dtype=np.int64)
        log = np.zeros(self.size, dtype=np.int64)
        x = 1
        for i in range(self.order):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.size:
                x ^= self.prim_poly
        exp[self.order : 2 * self.order] = exp[: self.order]
        self._exp = exp
        self._log = log

    # ------------------------------------------------------------------
    def alpha_pow(self, i: int) -> int:
        """Return α^i for the primitive element α."""
        return int(self._exp[i % self.order])

    def multiply(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inverse(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return int(self._exp[self.order - self._log[a]])

    def divide(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return int(self._exp[(self._log[a] - self._log[b]) % self.order])

    def power(self, a: int, e: int) -> int:
        if a == 0:
            return 0 if e > 0 else 1
        return int(self._exp[(self._log[a] * e) % self.order])

    def log(self, a: int) -> int:
        if a == 0:
            raise ValueError("log of zero is undefined")
        return int(self._log[a])

    # ------------------------------------------------------------------
    # polynomials over GF(2^m): lists of coefficients, lowest degree first
    # ------------------------------------------------------------------
    def poly_eval(self, coeffs: list[int], x: int) -> int:
        """Evaluate a polynomial (coefficients low-to-high) at ``x``."""
        result = 0
        power = 1
        for c in coeffs:
            if c:
                result ^= self.multiply(c, power)
            power = self.multiply(power, x)
        return result

    def poly_mul(self, a: list[int], b: list[int]) -> list[int]:
        out = [0] * (len(a) + len(b) - 1)
        for i, ai in enumerate(a):
            if not ai:
                continue
            for j, bj in enumerate(b):
                if bj:
                    out[i + j] ^= self.multiply(ai, bj)
        return out

    # ------------------------------------------------------------------
    # structure used by BCH construction
    # ------------------------------------------------------------------
    def cyclotomic_coset(self, i: int) -> tuple[int, ...]:
        """The 2-cyclotomic coset of ``i`` modulo ``2^m - 1``."""
        coset = []
        x = i % self.order
        while x not in coset:
            coset.append(x)
            x = (x * 2) % self.order
        return tuple(sorted(coset))

    def minimal_polynomial(self, i: int) -> int:
        """Minimal polynomial of α^i over GF(2), as a GF(2) bit mask.

        The returned integer has bit ``d`` set when the coefficient of
        ``x^d`` is one.  The product ``Π (x - α^j)`` over the cyclotomic
        coset of ``i`` always has coefficients in GF(2).
        """
        coset = self.cyclotomic_coset(i)
        # polynomial over GF(2^m), low-to-high coefficients; start with 1
        poly = [1]
        for j in coset:
            root = self.alpha_pow(j)
            # multiply by (x + root)  (== x - root in characteristic 2)
            poly = self.poly_mul(poly, [root, 1])
        mask = 0
        for d, c in enumerate(poly):
            if c not in (0, 1):
                raise ArithmeticError(
                    "minimal polynomial has a coefficient outside GF(2); "
                    "primitive polynomial table is inconsistent"
                )
            if c:
                mask |= 1 << d
        return mask


@lru_cache(maxsize=None)
def get_field(m: int) -> GF2m:
    """Shared, cached GF(2^m) instances (table construction is not free)."""
    return GF2m(m)
