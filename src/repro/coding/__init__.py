"""Per-word error detection and correction codes (the coding substrate).

This package implements the codes evaluated by the paper:

* :class:`~repro.coding.parity.InterleavedParityCode` — ``EDCn``
  bit-interleaved parity (the light-weight detection code used both
  horizontally and, across rows, vertically).
* :class:`~repro.coding.hamming.SecdedCode` — (72,64)-style extended
  Hamming SECDED, the conventional baseline.
* :class:`~repro.coding.bch.DectedCode`, :class:`~repro.coding.bch.QecpedCode`,
  :class:`~repro.coding.bch.OecnedCode` — t = 2/4/8 binary BCH codes, the
  "scaled-up conventional ECC" comparison points.
* :mod:`~repro.coding.overhead` — storage/latency/energy overhead models
  (Fig. 1, Fig. 7 inputs).
* :mod:`~repro.coding.interleave` — physical bit interleaving (column
  multiplexing) model (Fig. 2 input).
"""

from .base import (
    CodeGeometry,
    CodeStatus,
    DecodeResult,
    WordCode,
    bits_to_int,
    int_to_bits,
)
from .bch import BchCode, DectedCode, OecnedCode, QecpedCode
from .hamming import SecdedCode
from .interleave import InterleavingConfig, interleaved_burst_coverage
from .overhead import CodeOverhead, code_overhead, standard_codes
from .parity import ByteParityCode, InterleavedParityCode
from .registry import available_codes, make_code

__all__ = [
    "CodeGeometry",
    "CodeStatus",
    "DecodeResult",
    "WordCode",
    "bits_to_int",
    "int_to_bits",
    "BchCode",
    "DectedCode",
    "QecpedCode",
    "OecnedCode",
    "SecdedCode",
    "InterleavingConfig",
    "interleaved_burst_coverage",
    "CodeOverhead",
    "code_overhead",
    "standard_codes",
    "ByteParityCode",
    "InterleavedParityCode",
    "available_codes",
    "make_code",
]
