"""Physical bit interleaving (column multiplexing) model.

In a bit-interleaved SRAM array, ``D`` logical words share one physical
row: bit ``i`` of every word is stored in ``D`` adjacent columns
(Fig. 2(a) of the paper).  A physically-contiguous burst of up to ``D``
flipped cells then lands on ``D`` *different* logical words, one bit each,
so a per-word code of correction strength ``t`` covers contiguous bursts
of ``t * D`` cells along a row.

The model in this module captures:

* the logical↔physical column mapping,
* the burst-coverage arithmetic used by the coverage analysis
  (:mod:`repro.core.coverage`), and
* the energy/area/delay cost drivers the paper measured with Cacti — the
  actual cost numbers are produced by :mod:`repro.vlsi.cacti`, which takes
  an :class:`InterleavingConfig` as input.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InterleavingConfig", "interleaved_burst_coverage"]


@dataclass(frozen=True)
class InterleavingConfig:
    """Describes D-way physical bit interleaving of codewords in a row.

    Attributes
    ----------
    degree:
        ``D`` — number of logical codewords sharing one physical row.
    codeword_bits:
        Bits per logical codeword (data + check bits).
    """

    degree: int
    codeword_bits: int

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("interleaving degree must be >= 1")
        if self.codeword_bits < 1:
            raise ValueError("codeword_bits must be >= 1")

    # ------------------------------------------------------------------
    @property
    def physical_row_bits(self) -> int:
        """Total cells along one physical row."""
        return self.degree * self.codeword_bits

    def physical_column(self, word_index: int, bit_index: int) -> int:
        """Physical column of logical ``bit_index`` of word ``word_index``."""
        if not 0 <= word_index < self.degree:
            raise ValueError(f"word_index {word_index} out of range")
        if not 0 <= bit_index < self.codeword_bits:
            raise ValueError(f"bit_index {bit_index} out of range")
        return bit_index * self.degree + word_index

    def logical_position(self, physical_column: int) -> tuple[int, int]:
        """Inverse of :meth:`physical_column` → ``(word_index, bit_index)``."""
        if not 0 <= physical_column < self.physical_row_bits:
            raise ValueError(f"physical column {physical_column} out of range")
        return physical_column % self.degree, physical_column // self.degree

    # ------------------------------------------------------------------
    def worst_case_bits_per_word(self, burst_cells: int) -> int:
        """Max bits of a single logical word hit by a contiguous burst.

        A contiguous burst of ``burst_cells`` physical cells along a row is
        spread across the interleaved words; the worst-hit word receives
        ``ceil(burst_cells / degree)`` of them.
        """
        if burst_cells < 0:
            raise ValueError("burst_cells must be non-negative")
        if burst_cells == 0:
            return 0
        return -(-burst_cells // self.degree)


def interleaved_burst_coverage(correct_bits_per_word: int, degree: int) -> int:
    """Largest contiguous physical burst correctable along one row.

    With ``D``-way interleaving and a per-word code correcting ``t`` bits,
    any contiguous burst of up to ``t * D`` cells deposits at most ``t``
    errors in each word and is therefore correctable.  This is the
    arithmetic behind the paper's coverage claims, e.g. OECNED (t=8) with
    4-way interleaving covers 32-bit bursts.
    """
    if correct_bits_per_word < 0 or degree < 1:
        raise ValueError("invalid coverage parameters")
    return correct_bits_per_word * degree
