"""Name-based construction of per-word codes.

Benchmarks, examples and configuration files refer to codes by the names
used in the paper ("SECDED", "EDC8", "OECNED", ...).  This registry maps
those names onto constructors so experiment code never hard-codes classes.
"""

from __future__ import annotations

import re
from typing import Callable

from .base import WordCode
from .bch import BchCode, DectedCode, OecnedCode, QecpedCode
from .hamming import SecdedCode
from .parity import ByteParityCode, InterleavedParityCode

__all__ = ["make_code", "available_codes"]

_FACTORIES: dict[str, Callable[[int], WordCode]] = {
    "SECDED": SecdedCode,
    "DECTED": DectedCode,
    "QECPED": QecpedCode,
    "OECNED": OecnedCode,
    "BYTE_PARITY": ByteParityCode,
}

_EDC_PATTERN = re.compile(r"^EDC(\d+)$")
_BCH_PATTERN = re.compile(r"^BCH\(T=(\d+)\)$")


def make_code(name: str, data_bits: int) -> WordCode:
    """Construct a per-word code by its paper name.

    Supported names: ``EDCn`` for any interleave ``n`` (e.g. ``EDC8``,
    ``EDC16``), ``SECDED``, ``DECTED``, ``QECPED``, ``OECNED``,
    ``BCH(t=N)`` and ``BYTE_PARITY``.  Names are case-insensitive.
    """
    key = name.strip().upper()
    if key in _FACTORIES:
        return _FACTORIES[key](data_bits)
    edc = _EDC_PATTERN.match(key)
    if edc:
        return InterleavedParityCode(data_bits, interleave=int(edc.group(1)))
    bch = _BCH_PATTERN.match(key)
    if bch:
        return BchCode(data_bits, t=int(bch.group(1)))
    raise ValueError(
        f"unknown code name {name!r}; known names: "
        f"{', '.join(sorted(available_codes()))}, EDCn, BCH(t=N)"
    )


def available_codes() -> tuple[str, ...]:
    """Fixed (non-parameterized) code names the registry recognizes."""
    return tuple(sorted(_FACTORIES))
