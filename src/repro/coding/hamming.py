"""Extended Hamming (SECDED) codes.

SECDED — single-error-correct, double-error-detect — is the workhorse
per-word ECC in contemporary caches (the paper's baseline).  We implement
it as a shortened extended Hamming code:

* ``m`` parity bits positioned at powers of two give single-error
  correction over ``2**m - m - 1`` data bits (Hamming distance 3).
* One extra overall-parity bit extends the distance to 4, distinguishing
  single errors (correctable) from double errors (detectable only).

For 64-bit data words this yields the familiar (72,64) code; for 256-bit
words the (266,256) code used in the paper's 4MB L2 configuration.
"""

from __future__ import annotations

import numpy as np

from .base import CodeStatus, DecodeResult, WordCode

__all__ = ["SecdedCode", "hamming_parity_bits"]


def hamming_parity_bits(data_bits: int) -> int:
    """Number of Hamming parity bits (excluding the extended parity bit).

    The smallest ``m`` such that ``2**m >= data_bits + m + 1``.
    """
    if data_bits <= 0:
        raise ValueError("data_bits must be positive")
    m = 1
    while (1 << m) < data_bits + m + 1:
        m += 1
    return m


class SecdedCode(WordCode):
    """Shortened extended Hamming SECDED code over ``data_bits``.

    The codeword is laid out internally in the classic Hamming positions
    (1-indexed, parity bits at powers of two) plus an overall parity bit at
    position 0.  Externally the code exposes the usual
    ``encode(data) -> check`` / ``decode(data, check)`` interface where
    ``check`` holds the ``m + 1`` stored check bits.
    """

    def __init__(self, data_bits: int):
        super().__init__(data_bits)
        self._m = hamming_parity_bits(data_bits)
        self.name = "SECDED"
        # Pre-compute the mapping from data-bit index to Hamming position
        # (positions that are not powers of two), and the parity-coverage
        # masks for each of the m parity bits.
        total_positions = data_bits + self._m
        data_positions = []
        pos = 1
        while len(data_positions) < data_bits:
            if pos & (pos - 1):  # not a power of two
                data_positions.append(pos)
            pos += 1
            if pos > (1 << self._m):
                # continue past the last parity position; all further
                # positions are data positions
                pass
        self._data_positions = np.array(data_positions, dtype=np.int64)
        self._parity_positions = np.array(
            [1 << i for i in range(self._m)], dtype=np.int64
        )
        # coverage[i] is a boolean mask over data bits covered by parity i
        self._coverage = np.zeros((self._m, data_bits), dtype=bool)
        for i in range(self._m):
            mask = 1 << i
            self._coverage[i] = (self._data_positions & mask) != 0
        del total_positions

    # ------------------------------------------------------------------
    @property
    def check_bits(self) -> int:
        return self._m + 1

    @property
    def detect_bits(self) -> int:
        return 2

    @property
    def correct_bits(self) -> int:
        return 1

    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        data = self._validate_word(data)
        check = np.zeros(self._m + 1, dtype=np.uint8)
        for i in range(self._m):
            check[i] = np.bitwise_xor.reduce(data[self._coverage[i]]) if self._coverage[i].any() else 0
        # extended (overall) parity covers all data bits and all Hamming
        # parity bits
        check[self._m] = (int(data.sum()) + int(check[: self._m].sum())) & 1
        return check

    def decode(self, data: np.ndarray, check: np.ndarray) -> DecodeResult:
        data = self._validate_word(data)
        check = self._validate_check(check)
        expected = self.encode(data)
        syndrome_bits = np.bitwise_xor(expected[: self._m], check[: self._m])
        syndrome = 0
        for i in range(self._m):
            if syndrome_bits[i]:
                syndrome |= 1 << i
        overall = (
            int(data.sum()) + int(check[: self._m].sum()) + int(check[self._m])
        ) & 1

        if syndrome == 0 and overall == 0:
            return DecodeResult(data=data.copy(), status=CodeStatus.CLEAN)

        if overall == 1:
            # Odd number of flipped bits — assume a single-bit error.
            if syndrome == 0:
                # The extended parity bit itself flipped; data is intact.
                return DecodeResult(
                    data=data.copy(),
                    status=CodeStatus.CORRECTED,
                    corrected_check_bits=(self._m,),
                    syndrome_nonzero=True,
                )
            # Syndrome names a Hamming position.
            if syndrome & (syndrome - 1) == 0:
                # A parity (check) bit position — data is intact.
                check_index = int(np.log2(syndrome))
                return DecodeResult(
                    data=data.copy(),
                    status=CodeStatus.CORRECTED,
                    corrected_check_bits=(check_index,),
                    syndrome_nonzero=True,
                )
            matches = np.nonzero(self._data_positions == syndrome)[0]
            if matches.size == 0:
                # Syndrome points outside the shortened code — the error
                # pattern is not a legal single-bit error.
                return DecodeResult(
                    data=data.copy(),
                    status=CodeStatus.DETECTED_UNCORRECTABLE,
                    syndrome_nonzero=True,
                )
            bit = int(matches[0])
            corrected = data.copy()
            corrected[bit] ^= 1
            return DecodeResult(
                data=corrected,
                status=CodeStatus.CORRECTED,
                corrected_bits=(bit,),
                syndrome_nonzero=True,
            )

        # overall parity agrees but syndrome is non-zero: an even number of
        # bit flips — detectable but not correctable.
        return DecodeResult(
            data=data.copy(),
            status=CodeStatus.DETECTED_UNCORRECTABLE,
            syndrome_nonzero=True,
        )
