"""Binary BCH codes: the multi-bit correcting codes of the paper.

The conventional alternatives the paper compares against scale the
per-word ECC strength:

* ``DECTED``  — double-error-correct, triple-error-detect  (t = 2),
* ``QECPED``  — quad-error-correct, penta-error-detect     (t = 4),
* ``OECNED``  — octal-error-correct, nona-error-detect     (t = 8).

Each is a shortened primitive binary BCH code with designed correction
capability ``t`` plus one extended overall-parity bit that raises the
detection capability to ``t + 1`` (the paper estimates their storage from
the corresponding Hamming distances 6, 10 and 18).

The implementation is a textbook systematic BCH encoder (polynomial
division by the generator over GF(2)) and decoder (syndromes →
Berlekamp–Massey → Chien search).
"""

from __future__ import annotations

import numpy as np

from .base import CodeStatus, DecodeResult, WordCode
from .galois import get_field

__all__ = ["BchCode", "DectedCode", "QecpedCode", "OecnedCode"]


def _gf2_poly_mul(a: int, b: int) -> int:
    """Multiply two GF(2) polynomials given as bit masks."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def _gf2_poly_deg(p: int) -> int:
    return p.bit_length() - 1


def _gf2_poly_mod(dividend: int, divisor: int) -> int:
    """Remainder of GF(2) polynomial division."""
    d_deg = _gf2_poly_deg(divisor)
    while dividend.bit_length() - 1 >= d_deg and dividend:
        shift = (dividend.bit_length() - 1) - d_deg
        dividend ^= divisor << shift
    return dividend


class BchCode(WordCode):
    """Shortened t-error-correcting binary BCH code with extended parity.

    Parameters
    ----------
    data_bits:
        Width of the protected data word (``k`` after shortening).
    t:
        Designed random-error correction capability.
    extended_parity:
        When True (default), one extra overall parity bit is stored,
        raising guaranteed detection from ``t`` + miscorrect-risk to
        ``t + 1`` errors, matching the paper's DECTED/QECPED/OECNED
        definitions.
    """

    def __init__(self, data_bits: int, t: int, extended_parity: bool = True):
        super().__init__(data_bits)
        if t < 1:
            raise ValueError("t must be at least 1")
        self._t = int(t)
        self._extended = bool(extended_parity)

        # Choose the smallest field GF(2^m) whose code length can hold the
        # data plus the parity the generator will need.  The generator
        # degree is at most m*t, so require 2^m - 1 >= data_bits + m*t.
        m = 3
        while (1 << m) - 1 < data_bits + m * t:
            m += 1
        self._field = get_field(m)
        self._n_full = (1 << m) - 1

        # Generator polynomial: LCM of the minimal polynomials of
        # α, α^2, ..., α^{2t}.  Distinct cyclotomic cosets only.
        seen_cosets: set[tuple[int, ...]] = set()
        generator = 1  # GF(2) polynomial bit mask
        for i in range(1, 2 * t + 1):
            coset = self._field.cyclotomic_coset(i)
            if coset in seen_cosets:
                continue
            seen_cosets.add(coset)
            generator = _gf2_poly_mul(generator, self._field.minimal_polynomial(i))
        self._generator = generator
        self._parity_len = _gf2_poly_deg(generator)
        if data_bits + self._parity_len > self._n_full:
            raise ValueError(
                f"data_bits={data_bits} with t={t} does not fit in GF(2^{m}) "
                f"BCH code of length {self._n_full}"
            )
        self.name = f"BCH(t={t})"

    # ------------------------------------------------------------------
    @property
    def t(self) -> int:
        """Designed error-correction capability."""
        return self._t

    @property
    def field_m(self) -> int:
        """The field degree m of GF(2^m) the code is built over."""
        return self._field.m

    @property
    def check_bits(self) -> int:
        return self._parity_len + (1 if self._extended else 0)

    @property
    def detect_bits(self) -> int:
        return self._t + 1 if self._extended else self._t

    @property
    def correct_bits(self) -> int:
        return self._t

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def _data_to_poly(self, data: np.ndarray) -> int:
        """Pack data bits into a GF(2) polynomial shifted above the parity."""
        value = 0
        for i, bit in enumerate(data):
            if bit:
                value |= 1 << i
        return value << self._parity_len

    def encode(self, data: np.ndarray) -> np.ndarray:
        data = self._validate_word(data)
        message_poly = self._data_to_poly(data)
        remainder = _gf2_poly_mod(message_poly, self._generator)
        check = np.zeros(self.check_bits, dtype=np.uint8)
        for i in range(self._parity_len):
            check[i] = (remainder >> i) & 1
        if self._extended:
            check[self._parity_len] = (int(data.sum()) + int(check[: self._parity_len].sum())) & 1
        return check

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _codeword_bit(self, data: np.ndarray, check: np.ndarray, position: int) -> int:
        """Bit at codeword ``position`` (parity occupies the low positions)."""
        if position < self._parity_len:
            return int(check[position])
        return int(data[position - self._parity_len])

    def _syndromes(self, data: np.ndarray, check: np.ndarray) -> list[int]:
        field = self._field
        syndromes = []
        nonzero_positions = [
            p for p in range(self._parity_len) if check[p]
        ] + [self._parity_len + int(i) for i in np.nonzero(data)[0]]
        for j in range(1, 2 * self._t + 1):
            s = 0
            for pos in nonzero_positions:
                s ^= field.alpha_pow(pos * j)
            syndromes.append(s)
        return syndromes

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        """Return the error-locator polynomial Λ(x), low-to-high coeffs."""
        field = self._field
        c = [1] + [0] * (2 * self._t)
        b = [1] + [0] * (2 * self._t)
        l, m_shift, bb = 0, 1, 1
        for n, s_n in enumerate(syndromes):
            # discrepancy
            d = s_n
            for i in range(1, l + 1):
                if c[i] and syndromes[n - i]:
                    d ^= field.multiply(c[i], syndromes[n - i])
            if d == 0:
                m_shift += 1
            elif 2 * l <= n:
                t_poly = c.copy()
                coef = field.divide(d, bb)
                for i in range(len(c) - m_shift):
                    if b[i]:
                        c[i + m_shift] ^= field.multiply(coef, b[i])
                l = n + 1 - l
                b = t_poly
                bb = d
                m_shift = 1
            else:
                coef = field.divide(d, bb)
                for i in range(len(c) - m_shift):
                    if b[i]:
                        c[i + m_shift] ^= field.multiply(coef, b[i])
                m_shift += 1
        # trim trailing zeros beyond degree l
        return c[: l + 1]

    def _chien_search(self, locator: list[int]) -> list[int] | None:
        """Find error positions; None when the locator does not factor."""
        field = self._field
        degree = len(locator) - 1
        if degree == 0:
            return []
        positions = []
        # The extended parity bit is outside the BCH codeword, so the
        # shortened codeword spans exactly parity + data positions.
        n_used = self._parity_len + self.data_bits
        for pos in range(n_used):
            # error at codeword position `pos` corresponds to locator root
            # α^{-pos}
            x = field.alpha_pow((-pos) % field.order)
            if field.poly_eval(locator, x) == 0:
                positions.append(pos)
        if len(positions) != degree:
            return None
        return positions

    def decode(self, data: np.ndarray, check: np.ndarray) -> DecodeResult:
        data = self._validate_word(data)
        check = self._validate_check(check)

        bch_check = check[: self._parity_len]
        syndromes = self._syndromes(data, bch_check)
        overall_mismatch = False
        if self._extended:
            overall = (int(data.sum()) + int(bch_check.sum()) + int(check[self._parity_len])) & 1
            overall_mismatch = bool(overall)

        if not any(syndromes) and not overall_mismatch:
            return DecodeResult(data=data.copy(), status=CodeStatus.CLEAN)

        if not any(syndromes) and overall_mismatch:
            # Only the extended parity bit itself flipped.
            return DecodeResult(
                data=data.copy(),
                status=CodeStatus.CORRECTED,
                corrected_check_bits=(self._parity_len,),
                syndrome_nonzero=True,
            )

        locator = self._berlekamp_massey(syndromes)
        n_errors = len(locator) - 1
        if n_errors > self._t:
            return DecodeResult(
                data=data.copy(),
                status=CodeStatus.DETECTED_UNCORRECTABLE,
                syndrome_nonzero=True,
            )
        positions = self._chien_search(locator)
        if positions is None:
            return DecodeResult(
                data=data.copy(),
                status=CodeStatus.DETECTED_UNCORRECTABLE,
                syndrome_nonzero=True,
            )
        if self._extended:
            # The extended parity distinguishes t+1 errors (even/odd
            # mismatch) from <=t errors; if the parity of the error count
            # disagrees with the overall parity the pattern has more errors
            # than the BCH believes.
            expected_parity_flip = (len(positions)) & 1
            if expected_parity_flip != (1 if overall_mismatch else 0):
                return DecodeResult(
                    data=data.copy(),
                    status=CodeStatus.DETECTED_UNCORRECTABLE,
                    syndrome_nonzero=True,
                )

        corrected = data.copy()
        corrected_data_bits = []
        corrected_check_bits = []
        for pos in positions:
            if pos >= self._parity_len + self.data_bits:
                return DecodeResult(
                    data=data.copy(),
                    status=CodeStatus.DETECTED_UNCORRECTABLE,
                    syndrome_nonzero=True,
                )
            if pos < self._parity_len:
                corrected_check_bits.append(pos)
            else:
                bit = pos - self._parity_len
                corrected[bit] ^= 1
                corrected_data_bits.append(bit)
        return DecodeResult(
            data=corrected,
            status=CodeStatus.CORRECTED,
            corrected_bits=tuple(sorted(corrected_data_bits)),
            corrected_check_bits=tuple(sorted(corrected_check_bits)),
            syndrome_nonzero=True,
        )


class DectedCode(BchCode):
    """DECTED: 2-bit correction, 3-bit detection (Hamming distance 6)."""

    def __init__(self, data_bits: int):
        super().__init__(data_bits, t=2, extended_parity=True)
        self.name = "DECTED"


class QecpedCode(BchCode):
    """QECPED: 4-bit correction, 5-bit detection (Hamming distance 10)."""

    def __init__(self, data_bits: int):
        super().__init__(data_bits, t=4, extended_parity=True)
        self.name = "QECPED"


class OecnedCode(BchCode):
    """OECNED: 8-bit correction, 9-bit detection (Hamming distance 18)."""

    def __init__(self, data_bits: int):
        super().__init__(data_bits, t=8, extended_parity=True)
        self.name = "OECNED"
