"""Common abstractions for per-word error detection and correction codes.

The paper's horizontal codes (EDCn interleaved parity, SECDED, DECTED,
QECPED, OECNED) all operate on a fixed-width data word and produce a small
number of check bits.  This module defines the shared vocabulary:

* :class:`CodeStatus` — the outcome of decoding a (possibly corrupted)
  codeword.
* :class:`DecodeResult` — the decoded data plus status and, when available,
  the corrected bit positions.
* :class:`WordCode` — the abstract interface every concrete code
  implements.

Bit conventions
---------------
Data and check bits are represented as 1-D ``numpy`` arrays of dtype
``uint8`` containing 0/1 values.  Bit position 0 is the least significant
bit of the data word.  Helper functions convert between integers and bit
arrays so user code may work with plain Python integers.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CodeStatus",
    "DecodeResult",
    "WordCode",
    "int_to_bits",
    "bits_to_int",
    "as_bit_array",
    "random_word",
]


class CodeStatus(enum.Enum):
    """Outcome of decoding a codeword."""

    #: No error was detected.
    CLEAN = "clean"
    #: An error was detected and fully corrected in-line.
    CORRECTED = "corrected"
    #: An error was detected but could not be corrected by this code.
    DETECTED_UNCORRECTABLE = "detected_uncorrectable"
    #: The codeword decoded without complaint but the result is known (by
    #: the caller, e.g. a test harness) to be wrong — silent corruption.
    #: Codes never return this themselves; it exists for evaluation code.
    MISCORRECTED = "miscorrected"


@dataclass
class DecodeResult:
    """Result of decoding a possibly-corrupted codeword.

    Attributes
    ----------
    data:
        The decoded data bits (after any in-line correction).
    status:
        Outcome of the decode.
    corrected_bits:
        Data-bit positions that were flipped back by in-line correction.
        Empty when no correction was performed.
    corrected_check_bits:
        Check-bit positions that were corrected (errors confined to the
        check bits do not affect the data).
    syndrome_nonzero:
        True when the syndrome indicated any disagreement between the data
        and check bits, regardless of whether it was correctable.
    """

    data: np.ndarray
    status: CodeStatus
    corrected_bits: tuple[int, ...] = ()
    corrected_check_bits: tuple[int, ...] = ()
    syndrome_nonzero: bool = False

    @property
    def detected(self) -> bool:
        """True when the code noticed anything wrong."""
        return self.status in (
            CodeStatus.CORRECTED,
            CodeStatus.DETECTED_UNCORRECTABLE,
        )

    @property
    def corrected(self) -> bool:
        """True when the code returned corrected data."""
        return self.status is CodeStatus.CORRECTED


def as_bit_array(bits: "np.ndarray | list[int] | tuple[int, ...]") -> np.ndarray:
    """Coerce a bit sequence into a ``uint8`` array of 0/1 values."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D bit array, got shape {arr.shape}")
    if arr.size and arr.max() > 1:
        raise ValueError("bit arrays may only contain 0 and 1")
    return arr


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Convert a non-negative integer into a little-endian bit array."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if width <= 0:
        raise ValueError("width must be positive")
    if value >> width:
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    return np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: np.ndarray) -> int:
    """Convert a little-endian bit array into an integer."""
    arr = as_bit_array(bits)
    value = 0
    for i, b in enumerate(arr):
        if b:
            value |= 1 << i
    return value


def random_word(width: int, rng: np.random.Generator) -> np.ndarray:
    """Generate a uniformly random data word of ``width`` bits."""
    return rng.integers(0, 2, size=width, dtype=np.uint8)


@dataclass(frozen=True)
class CodeGeometry:
    """Static shape description of a word code.

    The paper quotes codes as ``(n, k)`` pairs, e.g. a (72,64) SECDED code
    stores 8 check bits per 64-bit data word.
    """

    data_bits: int
    check_bits: int

    @property
    def total_bits(self) -> int:
        return self.data_bits + self.check_bits

    @property
    def storage_overhead(self) -> float:
        """Check-bit storage as a fraction of the data bits (Fig. 1(b))."""
        return self.check_bits / self.data_bits

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.total_bits},{self.data_bits})"


class WordCode(abc.ABC):
    """Abstract per-word error detection/correction code.

    Concrete subclasses implement :meth:`encode` and :meth:`decode`; the
    shared helpers provide geometry and convenience integer interfaces.
    """

    #: Short name used in figures and the code registry (e.g. ``"SECDED"``).
    name: str = "abstract"

    def __init__(self, data_bits: int):
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        self._data_bits = int(data_bits)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def data_bits(self) -> int:
        """Number of data bits per word."""
        return self._data_bits

    @property
    @abc.abstractmethod
    def check_bits(self) -> int:
        """Number of check bits stored per word."""

    @property
    def geometry(self) -> CodeGeometry:
        return CodeGeometry(self.data_bits, self.check_bits)

    @property
    def total_bits(self) -> int:
        return self.data_bits + self.check_bits

    # ------------------------------------------------------------------
    # error coverage description (used by the coverage analysis)
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def detect_bits(self) -> int:
        """Guaranteed contiguous-burst detection capability in bits."""

    @property
    @abc.abstractmethod
    def correct_bits(self) -> int:
        """Guaranteed random-error correction capability in bits."""

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Compute the check bits for ``data`` (little-endian bit array)."""

    @abc.abstractmethod
    def decode(self, data: np.ndarray, check: np.ndarray) -> DecodeResult:
        """Check (and possibly correct) a stored data+check pair."""

    def error_candidates(
        self, data: np.ndarray, check: np.ndarray
    ) -> "tuple[int, ...] | None":
        """Codeword bit positions that could hold the detected error(s).

        For codes whose syndrome localizes errors only partially (e.g.
        interleaved parity identifies the violated parity *groups* but not
        the exact bits), this returns every codeword position consistent
        with the observed syndrome: data positions ``0..data_bits-1``
        followed by check positions ``data_bits..total_bits-1``.  The 2D
        recovery process uses it to narrow its column search.  Codes with
        no such partial information return None.
        """
        return None

    # ------------------------------------------------------------------
    # convenience integer interface
    # ------------------------------------------------------------------
    def encode_int(self, value: int) -> int:
        """Encode an integer data word, returning the check bits as int."""
        return bits_to_int(self.encode(int_to_bits(value, self.data_bits)))

    def decode_int(self, value: int, check: int) -> tuple[int, DecodeResult]:
        """Decode an integer data word + integer check bits."""
        result = self.decode(
            int_to_bits(value, self.data_bits),
            int_to_bits(check, self.check_bits),
        )
        return bits_to_int(result.data), result

    # ------------------------------------------------------------------
    def _validate_word(self, data: np.ndarray) -> np.ndarray:
        arr = as_bit_array(data)
        if arr.size != self.data_bits:
            raise ValueError(
                f"{self.name} expects {self.data_bits} data bits, got {arr.size}"
            )
        return arr

    def _validate_check(self, check: np.ndarray) -> np.ndarray:
        arr = as_bit_array(check)
        if arr.size != self.check_bits:
            raise ValueError(
                f"{self.name} expects {self.check_bits} check bits, got {arr.size}"
            )
        return arr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(data_bits={self.data_bits})"
