"""Run telemetry: structured events, typed counters/timers, module logging.

``repro.obs`` is the observability core the rest of the package reports
through.  It is deliberately stdlib-only (``logging``, ``contextvars``,
``time``, ``json``) so instrumentation can live in the hottest modules
without adding dependencies or import weight.

Two cooperating pieces:

:func:`emit`
    The one-line instrumentation hook.  Modules call
    ``emit("engine.run.start", logger=_log, key=..., n_trials=...)``;
    the event is appended to the active :class:`RunRecorder` (if any)
    and logged through the module's own logger, so ``python -m repro run
    -v`` and plain ``logging`` configuration both see the stream.

:class:`RunRecorder`
    Collects the structured event stream for one run plus typed
    :class:`Counter`/:class:`Timer` aggregates, fans events out to
    subscribers (the legacy ``Session.progress`` callback is exactly one
    such subscriber), and distills everything into a JSON-pure
    :meth:`~RunRecorder.summary` that
    :class:`repro.api.Session` attaches to every result as
    ``meta["telemetry"]``.

The recorder is installed with :func:`use_recorder` (a
:mod:`contextvars` context manager), so deep engine code needs no
recorder parameter threaded through — and code running outside any
recorded run still logs normally and pays one context-variable read.

Two further pieces extend the per-run view to the fleet level:

:mod:`repro.obs.metrics`
    A process-global, thread-safe :class:`MetricsRegistry` of counters,
    gauges and fixed-bucket histograms with labels, rendered in
    Prometheus text exposition format (the service's ``GET /metrics``).

:mod:`repro.obs.trace`
    Per-job :class:`Trace`/:class:`Span` trees propagated through
    :mod:`contextvars` (across ``asyncio.to_thread``), exported as span
    JSON and Chrome ``trace_event`` format.

Telemetry is observational by contract: it never participates in cache
keys and never lands in ``Result.data``, so recording cannot change any
result (see DESIGN.md §4).
"""

from .events import current_recorder, emit, use_recorder
from .metrics import MetricsRegistry, default_registry, parse_exposition
from .profile import (
    DEFAULT_HZ,
    PROFILE_SCHEMA_VERSION,
    MemoryWatermarks,
    ProfileConfig,
    RunProfiler,
    SamplingProfiler,
    current_profiler,
    memory_phase,
    process_usage,
    usage_delta,
)
from .recorder import (
    TELEMETRY_SCHEMA_VERSION,
    Counter,
    RunRecorder,
    Timer,
)
from .trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    Trace,
    current_span,
    current_trace,
    new_trace_id,
    use_span,
)

__all__ = [
    "DEFAULT_HZ",
    "MemoryWatermarks",
    "MetricsRegistry",
    "PROFILE_SCHEMA_VERSION",
    "ProfileConfig",
    "RunProfiler",
    "SamplingProfiler",
    "Span",
    "TELEMETRY_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "RunRecorder",
    "Timer",
    "Trace",
    "current_profiler",
    "current_recorder",
    "current_span",
    "current_trace",
    "default_registry",
    "emit",
    "memory_phase",
    "new_trace_id",
    "parse_exposition",
    "process_usage",
    "usage_delta",
    "use_recorder",
    "use_span",
]
