"""Event emission: the bridge between instrumented modules and recorders.

An *event* is a flat mapping with an ``event`` name plus free-form
JSON-pure fields.  :func:`emit` delivers each event twice:

- to the active :class:`~repro.obs.recorder.RunRecorder` (installed via
  :func:`use_recorder`), where it is timestamped, counted, and kept for
  the run's telemetry summary;
- to a standard :mod:`logging` logger (the instrumented module's own,
  so records carry the ``repro.engine.runner`` / ``repro.engine.cache``
  / ... hierarchy), making the same stream visible to ``-v`` verbose
  runs and any ordinary logging configuration.

Emission is cheap when nobody listens: one context-variable read plus
``Logger.isEnabledFor``.  Instrumentation sits at run/chunk granularity
(never per trial), so the hot kernels stay untouched.
"""

from __future__ import annotations

import contextlib
import contextvars
import logging
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .recorder import RunRecorder

__all__ = ["current_recorder", "emit", "use_recorder"]

#: The active recorder for this execution context (None outside runs).
_ACTIVE: "contextvars.ContextVar[RunRecorder | None]" = contextvars.ContextVar(
    "repro_obs_recorder", default=None
)

_FALLBACK_LOGGER = logging.getLogger("repro.obs")


def current_recorder() -> "RunRecorder | None":
    """The recorder events are currently being delivered to, if any."""
    return _ACTIVE.get()


@contextlib.contextmanager
def use_recorder(recorder: "RunRecorder") -> "Iterator[RunRecorder]":
    """Install ``recorder`` as the active event sink for this context.

    Nests correctly (the previous recorder is restored on exit) and is
    task/thread-safe by virtue of :mod:`contextvars`.
    """
    token = _ACTIVE.set(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.reset(token)


def _jsonable(value: Any) -> Any:
    """Coerce a field value to a JSON-pure shape.

    Numpy scalars/arrays are converted through their stdlib protocols
    (``item``/``tolist``) so :mod:`repro.obs` itself needs no numpy
    import; unknown objects fall back to ``repr``.
    """
    if value is None or type(value) in (bool, int, float, str):
        return value
    if isinstance(value, (bool, int, float, str)):
        # Scalar subclasses (numpy's float64 *is* a float) normalize to
        # the exact builtin so telemetry compares bit-for-bit after a
        # JSON round-trip.
        item = getattr(value, "item", None)
        if callable(item):
            return _jsonable(item())
        for base in (bool, int, float, str):
            if isinstance(value, base):
                return base(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return _jsonable(item())
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _jsonable(tolist())
    return repr(value)


def emit(
    event: str,
    /,
    *,
    logger: "logging.Logger | None" = None,
    level: int = logging.DEBUG,
    **fields: Any,
) -> None:
    """Record one structured event and log it through ``logger``.

    ``event`` is a dotted name (``"engine.run.start"``,
    ``"cache.hit"``, ...); ``fields`` are JSON-pure (or coercible)
    details.  Events reach the active recorder regardless of logging
    configuration; the log line is a compact ``event k=v ...`` render
    at ``level`` (DEBUG for chatty per-shard events, INFO for run-level
    milestones, WARNING for trouble like corrupt cache entries).
    """
    clean = {key: _jsonable(value) for key, value in fields.items()}
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder.record(event, **clean)
    log = logger if logger is not None else _FALLBACK_LOGGER
    if log.isEnabledFor(level):
        rendered = " ".join(f"{key}={_compact(value)}" for key, value in clean.items())
        log.log(level, "%s%s", event, f" {rendered}" if rendered else "")


def _compact(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 120 else text[:117] + "..."
