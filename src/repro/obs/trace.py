"""Per-job tracing: trace ids, spans, and Chrome trace_event export.

A :class:`Trace` follows one unit of work (a service job, a CLI run)
through every stage that touches it.  Spans are created two ways:

- :meth:`Trace.span` — a context manager for code you are inside of
  (``with trace.span("worker.run"): ...``).  The active span is kept in
  a :mod:`contextvars` variable, so spans nest automatically and the
  ambient span **crosses ``asyncio.to_thread``** (``to_thread`` runs
  its callable under a copy of the caller's context) — the service
  opens ``worker.run`` on the event loop and ``Session.run`` opens
  ``engine.execute`` as its child from inside the worker thread without
  any explicit plumbing.
- :meth:`Trace.add_span` — an explicitly-timed span for intervals
  observed after the fact (``queue.wait`` is recorded when the worker
  claims the job, from the job's enqueue timestamp).

Spans carry free-form JSON-pure attributes and point-in-time *events*
(:meth:`Span.add_event`); :class:`~repro.api.session.Session` nests the
run's whole :class:`~repro.obs.recorder.RunRecorder` stream into the
``engine.execute`` span this way.

Export formats:

- :meth:`Trace.to_dict` — the project's own span JSON
  (``{"trace_id", "spans": [...]}``, schema :data:`TRACE_SCHEMA_VERSION`);
- :meth:`Trace.to_chrome` — Chrome ``trace_event`` JSON (complete
  ``"X"`` events in microseconds, instant ``"i"`` events for span
  events) loadable in ``chrome://tracing`` / Perfetto;
- :meth:`Trace.export` — one payload carrying both (the top-level
  ``traceEvents`` key is what trace viewers look for; they ignore the
  extra keys), which is what ``serve --trace-dir`` persists per job and
  ``python -m repro trace`` renders.

All mutation is lock-guarded: the event loop, worker threads and engine
instrumentation append spans/events concurrently.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import threading
import time
import uuid
from typing import Any, Iterator, Optional

__all__ = [
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Trace",
    "current_span",
    "current_trace",
    "new_trace_id",
    "use_span",
]

#: Bump when the exported span layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: The innermost active span for this execution context (None outside
#: traced work).  ``asyncio.to_thread`` copies the context, so the
#: variable propagates into worker threads.
_ACTIVE_SPAN: "contextvars.ContextVar[Span | None]" = contextvars.ContextVar(
    "repro_obs_span", default=None
)


def new_trace_id() -> str:
    """A fresh 32-hex-character trace id."""
    return uuid.uuid4().hex


def current_span() -> "Optional[Span]":
    """The innermost active span in this context, if any."""
    return _ACTIVE_SPAN.get()


def current_trace() -> "Optional[Trace]":
    """The trace of the innermost active span, if any."""
    span = _ACTIVE_SPAN.get()
    return span.trace if span is not None else None


@contextlib.contextmanager
def use_span(span: "Span") -> "Iterator[Span]":
    """Install ``span`` as the ambient span for this context (without
    finishing it on exit — lifecycle stays with the caller)."""
    token = _ACTIVE_SPAN.set(span)
    try:
        yield span
    finally:
        _ACTIVE_SPAN.reset(token)


def _jsonable_attrs(attrs: dict) -> dict:
    from .events import _jsonable

    return {str(k): _jsonable(v) for k, v in attrs.items()}


class Span:
    """One named interval inside a :class:`Trace`."""

    __slots__ = (
        "trace",
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "events",
        "thread",
    )

    def __init__(
        self,
        trace: "Trace",
        name: str,
        *,
        span_id: str,
        parent_id: "str | None",
        start: float,
        attrs: "dict | None" = None,
    ):
        self.trace = trace
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: "float | None" = None
        self.attrs = dict(attrs or {})
        self.events: "list[dict]" = []
        self.thread = threading.current_thread().name

    # ------------------------------------------------------------------
    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    @property
    def duration(self) -> "float | None":
        return None if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach (JSON-pure) attributes to the span."""
        self.attrs.update(_jsonable_attrs(attrs))
        return self

    def add_event(self, name: str, /, **attrs: Any) -> dict:
        """Record a point-in-time event inside the span."""
        event = {"name": str(name), "t": self.trace._now()}
        if attrs:
            event["attrs"] = _jsonable_attrs(attrs)
        with self.trace._lock:
            self.events.append(event)
        return event

    def finish(self, end: "float | None" = None) -> "Span":
        """Close the span (idempotent) and register it with its trace."""
        if self.end is None:
            self.end = self.trace._now() if end is None else end
            self.trace._register(self)
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": (
                round(self.duration, 9) if self.duration is not None else None
            ),
            "thread": self.thread,
        }
        if self.attrs:
            payload["attrs"] = _jsonable_attrs(self.attrs)
        if self.events:
            payload["events"] = list(self.events)
        return payload

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {self.span_id}, {state})"


class Trace:
    """All spans for one traced unit of work."""

    def __init__(self, trace_id: "str | None" = None, *, name: str = ""):
        self.trace_id = trace_id or new_trace_id()
        self.name = name
        # One wall-clock epoch per trace; every subsequent stamp is this
        # epoch plus a perf_counter offset.  Spans therefore keep
        # absolute timestamps (Chrome export unchanged) but durations
        # are monotonic — an NTP clock step mid-trace cannot produce
        # negative or skewed spans.
        self.created = time.time()
        self._perf_epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: "list[Span]" = []
        self._ids = itertools.count(1)

    def _now(self) -> float:
        """Wall-clock-anchored monotonic timestamp for this trace."""
        return self.created + (time.perf_counter() - self._perf_epoch)

    # ------------------------------------------------------------------
    def _new_span(
        self,
        name: str,
        *,
        start: float,
        parent_id: "str | None",
        attrs: "dict | None",
    ) -> Span:
        with self._lock:
            span_id = f"{next(self._ids):04x}"
        return Span(
            self,
            name,
            span_id=span_id,
            parent_id=parent_id,
            start=start,
            attrs=_jsonable_attrs(attrs or {}),
        )

    def _register(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> "Iterator[Span]":
        """Open a child of the ambient span, activate it, finish on exit.

        An exception escaping the block is recorded as ``error`` on the
        span (and re-raised); the span still finishes, so a failed job's
        trace shows where it died.
        """
        parent = _ACTIVE_SPAN.get()
        parent_id = (
            parent.span_id
            if parent is not None and parent.trace is self
            else None
        )
        span = self._new_span(
            name, start=self._now(), parent_id=parent_id, attrs=attrs
        )
        token = _ACTIVE_SPAN.set(span)
        try:
            yield span
        except BaseException as exc:
            span.set(error=repr(exc))
            raise
        finally:
            _ACTIVE_SPAN.reset(token)
            span.finish()

    def add_span(
        self,
        name: str,
        *,
        start: float,
        end: float,
        parent_id: "str | None" = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-elapsed interval (e.g. ``queue.wait``)."""
        span = self._new_span(name, start=start, parent_id=parent_id, attrs=attrs)
        span.finish(end)
        return span

    # ------------------------------------------------------------------
    @property
    def spans(self) -> "list[Span]":
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The project's own span JSON (sorted by start time)."""
        spans = sorted(self.spans, key=lambda s: (s.start, s.span_id))
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "name": self.name,
            "created": self.created,
            "spans": [span.to_dict() for span in spans],
        }

    def to_chrome(self) -> "list[dict]":
        """Chrome ``trace_event`` array: ``"X"`` complete events plus
        ``"i"`` instants, microsecond timestamps relative to the trace's
        creation."""
        spans = sorted(self.spans, key=lambda s: (s.start, s.span_id))
        tids = {}
        events: "list[dict]" = []
        for span in spans:
            tid = tids.setdefault(span.thread, len(tids) + 1)
            end = span.end if span.end is not None else span.start
            event = {
                "name": span.name,
                "ph": "X",
                "ts": round((span.start - self.created) * 1e6, 3),
                "dur": round((end - span.start) * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
            events.append(event)
            for point in span.events:
                instant = {
                    "name": f"{span.name}: {point['name']}",
                    "ph": "i",
                    "ts": round((point["t"] - self.created) * 1e6, 3),
                    "pid": 1,
                    "tid": tid,
                    "s": "t",  # thread-scoped instant
                }
                if point.get("attrs"):
                    instant["args"] = point["attrs"]
                events.append(instant)
        for thread_name, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": thread_name},
                }
            )
        return events

    def export(self) -> dict:
        """One persisted payload serving both consumers.

        The top-level ``traceEvents`` array is what
        ``chrome://tracing``/Perfetto loads (extra keys are ignored by
        the viewers); the ``trace`` key carries the richer span JSON the
        timeline renderer and tests read.
        """
        return {
            "traceEvents": self.to_chrome(),
            "displayTimeUnit": "ms",
            "trace": self.to_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"Trace({self.trace_id[:12]}…, name={self.name!r}, "
            f"spans={len(self._spans)})"
        )
