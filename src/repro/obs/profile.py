"""Opt-in continuous profiling: sampled stacks, memory watermarks, rusage.

Three stdlib-only collectors, each usable alone, composed by
:class:`RunProfiler` for :meth:`repro.api.Session.run`'s ``profile=``
option:

:class:`SamplingProfiler`
    A background thread samples every Python thread's stack via
    :func:`sys._current_frames` at a configurable rate (default
    :data:`DEFAULT_HZ` = 47 Hz, a prime so the sampler does not
    phase-lock with periodic work) and aggregates them into
    collapsed-stack counts —
    the ``frameA;frameB;frameC count`` format flamegraph tooling eats.
    Sampling never acquires locks held by the sampled threads and never
    touches the event loop, so it is safe under asyncio and
    free-threaded worker pools alike.  Start/stop are idempotent and
    the profiler is restartable.

:class:`MemoryWatermarks`
    :mod:`tracemalloc`-based per-phase peaks.  Phases nest; each phase
    observes the allocation peak inside its own window (parent windows
    fold the child's peak back in), so ``engine.run`` vs ``perf.grid``
    attributions stay meaningful even when one wraps the other.  If
    tracemalloc is already tracing (e.g. a test harness), the collector
    piggybacks and leaves it running on stop.

:func:`process_usage` / :func:`usage_delta`
    Cheap point-in-time process accounting — ``time.process_time`` plus
    ``resource.getrusage`` where available — used both for per-shard
    worker deltas (returned through the existing runner chunk tuples)
    and the service's ``repro_process_*`` gauges.

Profiles are observational by contract (DESIGN.md §7): they attach only
to ``meta["telemetry"]["profile"]``, never to ``Result.data`` and never
to cache keys, so a profiled run is bit-identical to an unprofiled one.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import os
import sys
import threading
import time
import tracemalloc
from typing import Any, Iterator, Mapping, Optional

try:  # not on Windows; every collector degrades gracefully without it
    import resource as _resource
except ImportError:  # pragma: no cover - platform dependent
    _resource = None

__all__ = [
    "DEFAULT_HZ",
    "PROFILE_SCHEMA_VERSION",
    "MemoryWatermarks",
    "ProfileConfig",
    "RunProfiler",
    "SamplingProfiler",
    "current_profiler",
    "memory_phase",
    "process_usage",
    "usage_delta",
]

#: Bump when the profile payload layout changes incompatibly.
PROFILE_SCHEMA_VERSION = 1

#: Default sampling rate.  Prime, so the sampler cannot phase-lock with
#: work that recurs at round frequencies; high enough to resolve
#: ~50 ms phases, low enough that GIL handoffs to the sampler thread
#: stay well under the 5% overhead budget (see DESIGN.md §7 and
#: benchmarks/test_profile_overhead.py — at ~100 Hz the measured
#: overhead creeps to 3-5%, at 47 Hz it is under 1%).
DEFAULT_HZ = 47.0

#: ru_maxrss unit: KiB on Linux, bytes on macOS.
_RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024

#: The innermost active RunProfiler (None outside profiled runs).
#: ``asyncio.to_thread`` copies the context, so the variable propagates
#: into worker threads the same way the ambient span does.
_ACTIVE_PROFILER: "contextvars.ContextVar[RunProfiler | None]" = (
    contextvars.ContextVar("repro_obs_profiler", default=None)
)


def current_profiler() -> "Optional[RunProfiler]":
    """The ambient :class:`RunProfiler`, if a profiled run is active."""
    return _ACTIVE_PROFILER.get()


@contextlib.contextmanager
def memory_phase(name: str) -> "Iterator[None]":
    """Mark a named memory-watermark phase on the ambient profiler.

    No-op (zero allocation, one contextvar read) when no profiled run is
    active, so engine code can mark phases unconditionally.
    """
    profiler = _ACTIVE_PROFILER.get()
    if profiler is None or profiler.memory is None:
        yield
        return
    with profiler.memory.phase(name):
        yield


# ----------------------------------------------------------------------
# Process / worker resource accounting
# ----------------------------------------------------------------------
def process_usage() -> dict:
    """A point-in-time snapshot of this process's resource usage.

    Keys: ``pid``, ``cpu_seconds`` (process-wide CPU via
    :func:`time.process_time`), ``wall_seconds`` (perf_counter),
    ``user_seconds``/``system_seconds``/``max_rss_bytes`` (rusage,
    ``None`` where :mod:`resource` is unavailable).
    """
    snap = {
        "pid": os.getpid(),
        "cpu_seconds": time.process_time(),
        "wall_seconds": time.perf_counter(),
        "user_seconds": None,
        "system_seconds": None,
        "max_rss_bytes": None,
    }
    if _resource is not None:
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        snap["user_seconds"] = usage.ru_utime
        snap["system_seconds"] = usage.ru_stime
        snap["max_rss_bytes"] = int(usage.ru_maxrss) * _RU_MAXRSS_SCALE
    return snap


def usage_delta(before: "Mapping[str, Any]") -> dict:
    """Usage accrued since a :func:`process_usage` snapshot.

    CPU and wall figures are deltas; ``max_rss_bytes`` is the *end*
    high-water mark (rusage reports a lifetime watermark, so a delta
    would usually be zero and never meaningful).
    """
    now = process_usage()
    delta = {
        "pid": now["pid"],
        "cpu_seconds": round(now["cpu_seconds"] - before["cpu_seconds"], 9),
        "wall_seconds": round(now["wall_seconds"] - before["wall_seconds"], 9),
        "max_rss_bytes": now["max_rss_bytes"],
    }
    if now["user_seconds"] is not None and before.get("user_seconds") is not None:
        delta["user_seconds"] = round(now["user_seconds"] - before["user_seconds"], 9)
        delta["system_seconds"] = round(
            now["system_seconds"] - before["system_seconds"], 9
        )
    return delta


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------
def _frame_label(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", code.co_filename)
    qualname = getattr(code, "co_qualname", code.co_name)  # 3.11+
    return f"{module}:{qualname}"


class SamplingProfiler:
    """Sample every thread's stack on a background thread.

    The sampler holds its own lock only while bumping the counts dict —
    never while walking frames — and :func:`sys._current_frames` itself
    does not block the sampled threads, so a stuck or GIL-heavy workload
    cannot deadlock against its own profiler.
    """

    def __init__(self, hz: float = DEFAULT_HZ, *, max_stack_depth: int = 64):
        if not hz > 0:
            raise ValueError(f"hz must be positive, got {hz!r}")
        self.hz = float(hz)
        self.max_stack_depth = int(max_stack_depth)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._counts: "dict[str, int]" = {}
        self._threads_observed: "set[str]" = set()
        self.samples = 0
        self._started_at: "float | None" = None
        self.duration_seconds = 0.0
        #: Accumulated time spent inside :meth:`_sample_once` — the
        #: sampler's own CPU cost, so every profile carries its measured
        #: overhead (asserted against the 5% budget in
        #: benchmarks/test_profile_overhead.py).  Written only by the
        #: sampler thread.
        self.sampling_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent; restart resumes the same counts)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._started_at = time.perf_counter()
            self._thread = threading.Thread(
                target=self._loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling (idempotent).  Counts survive for collection."""
        with self._lock:
            thread, self._thread = self._thread, None
            if self._started_at is not None:
                self.duration_seconds += time.perf_counter() - self._started_at
                self._started_at = None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        # Drift-corrected schedule: next_tick advances by the interval,
        # not by "now + interval", so a slow sample does not lower the
        # effective rate permanently.
        next_tick = time.perf_counter() + interval
        while not self._stop.is_set():
            delay = next_tick - time.perf_counter()
            if delay > 0 and self._stop.wait(delay):
                break
            next_tick += interval
            sample_started = time.perf_counter()
            self._sample_once(own_ident)
            self.sampling_seconds += time.perf_counter() - sample_started

    def _sample_once(self, own_ident: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        stacks = []
        for ident, frame in sys._current_frames().items():
            if ident == own_ident:
                continue
            parts: "list[str]" = []
            depth = 0
            while frame is not None and depth < self.max_stack_depth:
                parts.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not parts:
                continue
            parts.reverse()  # root → leaf, the collapsed-stack order
            stacks.append((";".join(parts), names.get(ident, str(ident))))
        with self._lock:
            self.samples += 1
            for stack, thread_name in stacks:
                self._counts[stack] = self._counts.get(stack, 0) + 1
                self._threads_observed.add(thread_name)

    # ------------------------------------------------------------------
    def collapsed(self) -> "dict[str, int]":
        """A snapshot of the collapsed-stack counts."""
        with self._lock:
            return dict(self._counts)

    def collapsed_text(self) -> str:
        """The counts in collapsed-stack text format (one per line)."""
        counts = self.collapsed()
        return "\n".join(f"{stack} {count}" for stack, count in sorted(counts.items()))

    def to_dict(self) -> dict:
        with self._lock:
            duration = self.duration_seconds
            if self._started_at is not None:
                duration += time.perf_counter() - self._started_at
            return {
                "hz": self.hz,
                "samples": self.samples,
                "duration_seconds": round(duration, 6),
                "sampling_seconds": round(self.sampling_seconds, 6),
                "stacks": dict(self._counts),
                "threads_observed": sorted(self._threads_observed),
            }


# ----------------------------------------------------------------------
# tracemalloc memory watermarks
# ----------------------------------------------------------------------
class MemoryWatermarks:
    """Per-phase allocation peaks via :mod:`tracemalloc`.

    Each :meth:`phase` measures the peak inside its own window using
    :func:`tracemalloc.reset_peak`.  Entering a child phase first folds
    the parent's window peak into the parent's record, so nesting
    attributes every allocation to the innermost phase that was open
    while still giving outer phases a peak at least as large as any
    child's.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._started_tracing = False
        self._active = False
        self._phases: "dict[str, dict]" = {}
        self._stack: "list[dict]" = []

    # ------------------------------------------------------------------
    def start(self) -> "MemoryWatermarks":
        if self._active:
            return self
        self._active = True
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        return self

    def stop(self) -> "MemoryWatermarks":
        if not self._active:
            return self
        self._active = False
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracing = False
        return self

    def __enter__(self) -> "MemoryWatermarks":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _fold_window_peak(self) -> None:
        """Fold the current window's peak into the innermost open phase."""
        if not self._stack:
            return
        _, peak = tracemalloc.get_traced_memory()
        record = self._stack[-1]
        record["peak_bytes"] = max(record["peak_bytes"], peak)

    @contextlib.contextmanager
    def phase(self, name: str) -> "Iterator[None]":
        """Measure the allocation peak while the block runs (nestable)."""
        if not self._active or not tracemalloc.is_tracing():
            yield
            return
        name = str(name)
        with self._lock:
            self._fold_window_peak()
            current, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            record = self._phases.setdefault(
                name,
                {"count": 0, "peak_bytes": 0, "alloc_bytes": 0, "current_bytes": 0},
            )
            record["count"] += 1
            self._stack.append(record)
        try:
            yield
        finally:
            with self._lock:
                now, peak = tracemalloc.get_traced_memory()
                record["peak_bytes"] = max(record["peak_bytes"], peak)
                record["alloc_bytes"] = max(record["alloc_bytes"], now - current)
                record["current_bytes"] = now
                self._stack.pop()
                if self._stack:
                    parent = self._stack[-1]
                    parent["peak_bytes"] = max(
                        parent["peak_bytes"], record["peak_bytes"]
                    )
                tracemalloc.reset_peak()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            payload = {
                "tracing": self._active,
                "phases": {name: dict(rec) for name, rec in self._phases.items()},
            }
        if tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            payload["current_bytes"] = current
            payload["window_peak_bytes"] = peak
        return payload


# ----------------------------------------------------------------------
# Configuration + run orchestration
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ProfileConfig:
    """How :meth:`Session.run` should profile (``profile=`` option)."""

    hz: float = DEFAULT_HZ
    memory: bool = True
    max_stack_depth: int = 64

    @classmethod
    def coerce(cls, value: Any) -> "ProfileConfig | None":
        """Normalize the ``profile=`` argument.

        ``None``/``False`` → no profiling; ``True`` → defaults; a number
        → that sampling rate; a mapping → keyword overrides; a
        :class:`ProfileConfig` passes through.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, (int, float)):
            return cls(hz=float(value))
        if isinstance(value, Mapping):
            return cls(**dict(value))
        raise TypeError(
            f"profile= expects None, bool, Hz, mapping or ProfileConfig; "
            f"got {type(value).__name__}"
        )


class RunProfiler:
    """Compose the collectors around one run (context manager).

    Entering starts the sampler (and tracemalloc watermarks unless
    disabled) and installs the profiler as the ambient one so
    :func:`memory_phase` markers anywhere below attribute correctly;
    exiting stops everything and freezes :meth:`profile`.
    """

    def __init__(self, config: "ProfileConfig | None" = None):
        self.config = config or ProfileConfig()
        self.sampler = SamplingProfiler(
            self.config.hz, max_stack_depth=self.config.max_stack_depth
        )
        self.memory: "MemoryWatermarks | None" = (
            MemoryWatermarks() if self.config.memory else None
        )
        self._usage0: "dict | None" = None
        self._profile: "dict | None" = None
        self._token: "contextvars.Token | None" = None

    def __enter__(self) -> "RunProfiler":
        self._usage0 = process_usage()
        self.sampler.start()
        if self.memory is not None:
            self.memory.start()
        self._token = _ACTIVE_PROFILER.set(self)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._token is not None:
            _ACTIVE_PROFILER.reset(self._token)
            self._token = None
        self.sampler.stop()
        sampled = self.sampler.to_dict()
        self._profile = {
            "schema": PROFILE_SCHEMA_VERSION,
            **sampled,
            "process": usage_delta(self._usage0) if self._usage0 else {},
        }
        if self.memory is not None:
            self._profile["memory"] = self.memory.to_dict()
            self.memory.stop()

    # ------------------------------------------------------------------
    def profile(self) -> dict:
        """The frozen profile payload (after exit; live snapshot before)."""
        if self._profile is not None:
            return self._profile
        payload = {
            "schema": PROFILE_SCHEMA_VERSION,
            **self.sampler.to_dict(),
            "process": usage_delta(self._usage0) if self._usage0 else {},
        }
        if self.memory is not None:
            payload["memory"] = self.memory.to_dict()
        return payload

    def digest(self) -> dict:
        """A small summary for span attributes (no stack payload)."""
        profile = self.profile()
        return {
            "hz": profile["hz"],
            "samples": profile["samples"],
            "unique_stacks": len(profile["stacks"]),
            "duration_seconds": profile["duration_seconds"],
        }
