"""The per-run telemetry recorder and its typed counter/timer primitives.

One :class:`RunRecorder` lives for one ``Session.run`` call (or any
other scope a caller wraps in :func:`repro.obs.use_recorder`).  It
keeps the ordered structured-event stream, auto-counts events by name,
hosts explicit :class:`Counter`/:class:`Timer` aggregates (phase
timings), and fans every event out to subscribers.

The recorder's :meth:`~RunRecorder.summary` is the serializable
artifact: a JSON-pure digest of cache behavior, phase timings, engine
shard/dispatch statistics and executor lifecycle that survives the
``Result`` JSON round-trip as ``meta["telemetry"]``.  The full raw
stream is available as JSON lines via :meth:`~RunRecorder.to_jsonl`
(the CLI's ``--telemetry PATH``).

Subscribers are fault-isolated: a subscriber that raises is logged once
(WARNING) and dropped for the rest of the run, so a broken progress
hook can no longer kill a simulation (it used to propagate out of
``Session.run``).
"""

from __future__ import annotations

import json
import logging
import threading
import time
from typing import Any, Callable

__all__ = ["TELEMETRY_SCHEMA_VERSION", "Counter", "Timer", "RunRecorder"]

#: Bump when the summary layout changes incompatibly.
TELEMETRY_SCHEMA_VERSION = 1

_log = logging.getLogger("repro.obs")


class Counter:
    """A named monotonically increasing integer (thread-safe: executor
    and service paths bump counters from several threads at once)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> int:
        with self._lock:
            self.value += int(n)
            return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Timer:
    """A named accumulating stopwatch (context manager, re-usable).

    ``with recorder.timer("execute"): ...`` accumulates wall-clock
    seconds and an activation count; one Timer may time many intervals
    (e.g. one per engine run of a sweep).

    Nested or overlapping activations of the *same* Timer merge into
    the outermost interval: re-entering while running no longer resets
    the start (which silently dropped the first interval); instead the
    entry is depth-counted, a one-time WARNING is logged, and only the
    outermost exit accumulates — so wall-clock time is never counted
    twice and never lost.
    """

    __slots__ = ("name", "count", "seconds", "_started", "_depth", "_warned", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self._started: "float | None" = None
        self._depth = 0
        self._warned = False
        self._lock = threading.Lock()

    def __enter__(self) -> "Timer":
        with self._lock:
            if self._depth == 0:
                self._started = time.perf_counter()
            elif not self._warned:
                self._warned = True
                _log.warning(
                    "Timer %r re-entered while already running; nested "
                    "activations merge into the outermost interval",
                    self.name,
                )
            self._depth += 1
        return self

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            if self._depth == 0:
                return  # unbalanced __exit__: nothing to close
            self._depth -= 1
            if self._depth == 0 and self._started is not None:
                self.seconds += time.perf_counter() - self._started
                self.count += 1
                self._started = None

    def __repr__(self) -> str:
        return f"Timer({self.name!r}, count={self.count}, seconds={self.seconds:.6f})"


class RunRecorder:
    """Collects one run's structured events, counters and timers."""

    def __init__(self):
        self._t0 = time.perf_counter()
        self.events: list[dict] = []
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._subscribers: list[Callable[[dict], None]] = []
        # The sharded-executor merge loop and the service's worker
        # threads record into one recorder concurrently; the lock keeps
        # the event list and aggregate registries consistent.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------
    def record(self, event: str, **fields: Any) -> dict:
        """Append one event (timestamped relative to recorder birth).

        Every event also bumps its ``events.<name>`` counter, so plain
        occurrence counts (cache hits, shards, pool starts) need no
        separate bookkeeping at the emission site.
        """
        payload = {
            "event": event,
            "t": round(time.perf_counter() - self._t0, 6),
            **fields,
        }
        with self._lock:
            self.events.append(payload)
        self.incr(f"events.{event}")
        self._dispatch(payload)
        return payload

    def subscribe(self, subscriber: Callable[[dict], None]) -> None:
        """Register a callable receiving every subsequent event dict.

        A subscriber that raises is logged once and dropped — observers
        must never be able to kill the run they observe.
        """
        with self._lock:
            self._subscribers.append(subscriber)

    def _dispatch(self, payload: dict) -> None:
        for subscriber in list(self._subscribers):
            try:
                subscriber(payload)
            except Exception:
                with self._lock:
                    if subscriber in self._subscribers:
                        self._subscribers.remove(subscriber)
                _log.warning(
                    "telemetry subscriber %r raised and was dropped",
                    subscriber,
                    exc_info=True,
                )

    # ------------------------------------------------------------------
    # Typed aggregates
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the named :class:`Counter` (thread-safe)."""
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def counter_values(self, prefix: str = "") -> "dict[str, int]":
        """Snapshot of counter values, optionally filtered by prefix
        (e.g. ``"events.service."`` for the experiment service's own
        event counts)."""
        return {
            name: counter.value
            for name, counter in self._counters.items()
            if name.startswith(prefix)
        }

    def incr(self, name: str, n: int = 1) -> int:
        return self.counter(name).add(n)

    def timer(self, name: str) -> Timer:
        """Get or create the named :class:`Timer` (use as a context
        manager; repeated activations accumulate)."""
        timer = self._timers.get(name)
        if timer is None:
            with self._lock:
                timer = self._timers.setdefault(name, Timer(name))
        return timer

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The raw event stream as JSON lines (one event per line)."""
        return "".join(json.dumps(event, sort_keys=True) + "\n" for event in self.events)

    def summary(self) -> dict:
        """JSON-pure digest of the run, for ``Result.meta["telemetry"]``.

        The layout (schema version :data:`TELEMETRY_SCHEMA_VERSION`) is
        documented in DESIGN.md §4.  Everything here is derived from
        the event stream and the typed aggregates; nothing feeds back
        into results or cache keys.
        """
        counts = {name: c.value for name, c in self._counters.items()}
        run_start = self._first("run.start")
        run_finish = self._last("run.finish")

        engine_runs = self._select("engine.run.finish")
        engine_starts = self._select("engine.run.start")
        engine_shards = self._select("engine.shard")
        perf_grids = self._select("perf.grid.finish")
        perf_starts = self._select("perf.grid.start")
        perf_shards = self._select("perf.shard")
        pool_starts = self._select("executor.pool.start")

        engine_keys = sorted(
            {e["key"] for e in engine_starts if "key" in e}
        )
        perf_keys = sorted(
            {
                key
                for e in perf_starts
                for key in (e.get("keys") or {}).values()
            }
        )
        dispatch = {
            kind: sum(int(s.get(kind, 0)) for s in engine_shards)
            for kind in ("sparse_blocks", "dense_blocks", "densified_blocks")
        }

        def resources(shards: "list[dict]") -> dict:
            """Worker resource accounting aggregated across shard events
            (CPU sums; RSS is a per-process watermark, so the max)."""
            rss = [
                int(s["max_rss_bytes"])
                for s in shards
                if s.get("max_rss_bytes") is not None
            ]
            return {
                "cpu_seconds": round(
                    sum(float(s.get("cpu_seconds", 0.0)) for s in shards), 6
                ),
                "max_rss_bytes": max(rss) if rss else None,
                "processes": len(
                    {s["pid"] for s in shards if s.get("pid") is not None}
                ),
            }

        summary: dict[str, Any] = {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "events": len(self.events),
            "elapsed_seconds": (
                run_finish.get("elapsed")
                if run_finish is not None
                else round(time.perf_counter() - self._t0, 6)
            ),
            "workers": (run_start or {}).get("workers"),
            "counters": counts,
            "phases": {
                name: {"count": t.count, "seconds": round(t.seconds, 6)}
                for name, t in self._timers.items()
            },
            "cache": {
                "hits": counts.get("events.cache.hit", 0),
                "misses": counts.get("events.cache.miss", 0),
                "stores": counts.get("events.cache.store", 0),
                "corrupt": counts.get("events.cache.corrupt", 0),
            },
            "engine": {
                "runs": len(engine_runs),
                "runs_from_cache": sum(
                    1 for e in engine_runs if e.get("from_cache")
                ),
                "trials": sum(int(e.get("n_trials", 0)) for e in engine_runs),
                "shards": len(engine_shards),
                "blocks": sum(int(s.get("blocks", 0)) for s in engine_shards),
                "shard_seconds": round(
                    sum(float(s.get("elapsed", 0.0)) for s in engine_shards), 6
                ),
                "dispatch": dispatch,
                "resources": resources(engine_shards),
                "cache_keys": engine_keys,
            },
            "perf": {
                "grids": len(perf_grids),
                "cells": sum(len(e.get("labels", ())) for e in perf_starts),
                "cells_from_cache": sum(
                    len(e.get("cached_labels", ())) for e in perf_starts
                ),
                "trials": sum(int(e.get("n_trials", 0)) for e in perf_starts),
                "shards": len(perf_shards),
                "resources": resources(perf_shards),
                "cache_keys": perf_keys,
            },
            "executor": {
                "pools_started": len(pool_starts),
                "start_method": (
                    pool_starts[-1].get("start_method") if pool_starts else None
                ),
                "maps": counts.get("events.executor.map", 0),
            },
        }
        estimator_events = self._select("engine.estimator")
        if estimator_events:
            realized = sum(
                int(e.get("realized_trials", 0)) for e in estimator_events
            )
            weighted_vrf = sum(
                float(e.get("variance_reduction_factor", 1.0))
                * int(e.get("realized_trials", 0))
                for e in estimator_events
            )
            summary["ess"] = round(
                sum(float(e.get("ess", 0.0)) for e in estimator_events), 3
            )
            summary["realized_trials"] = realized
            # Trial-weighted mean across estimator runs: one big tilted
            # run should dominate a handful of pilot blocks.
            summary["variance_reduction_factor"] = round(
                weighted_vrf / realized if realized else 1.0, 6
            )
            summary["estimators"] = sorted(
                {str(e.get("estimator")) for e in estimator_events}
            )
        if run_finish is not None and "error" in run_finish:
            summary["error"] = run_finish["error"]
        # Overall cache-hit status: True when every simulation this run
        # needed was served from cache, False when anything was
        # computed, None when the run did no cached work at all.
        engine_fresh = summary["engine"]["runs"] - summary["engine"]["runs_from_cache"]
        perf_fresh = summary["perf"]["cells"] - summary["perf"]["cells_from_cache"]
        if summary["engine"]["runs"] or summary["perf"]["cells"]:
            summary["from_cache"] = engine_fresh == 0 and perf_fresh == 0
        else:
            summary["from_cache"] = None
        return summary

    # ------------------------------------------------------------------
    def _select(self, event: str) -> "list[dict]":
        return [e for e in self.events if e["event"] == event]

    def _first(self, event: str) -> "dict | None":
        found = self._select(event)
        return found[0] if found else None

    def _last(self, event: str) -> "dict | None":
        found = self._select(event)
        return found[-1] if found else None

    def __repr__(self) -> str:
        return (
            f"RunRecorder(events={len(self.events)}, "
            f"counters={len(self._counters)}, timers={len(self._timers)}, "
            f"subscribers={len(self._subscribers)})"
        )
