"""Service-wide metrics: counters, gauges, fixed-bucket histograms.

Where :class:`~repro.obs.recorder.RunRecorder` captures *one run's*
event stream, :class:`MetricsRegistry` aggregates over the *process
lifetime* — fleet-level counters, gauges and latency distributions the
experiment service exposes on ``GET /metrics``.  The module is
stdlib-only (``threading``, ``re``, ``math``) and deliberately mirrors
the Prometheus client data model:

- :class:`Counter` — monotonically increasing totals
  (``repro_jobs_total{outcome="ok"}``);
- :class:`Gauge` — set/inc/dec point-in-time values
  (``repro_queue_depth``);
- :class:`Histogram` — fixed cumulative buckets plus ``_sum``/``_count``
  (``repro_job_latency_seconds_bucket{le="0.5"}``).  A value lands in
  every bucket whose bound is **>= the value** (Prometheus ``le``
  semantics: ``value == bound`` counts), and the implicit ``+Inf``
  bucket counts everything.

Every metric family may declare label names; ``family.labels(k=v)``
returns (creating on first use) the child for that label combination.
All mutation paths are thread-safe — the service's asyncio loop, its
worker threads and the engine's parent-process instrumentation all
write concurrently.

:meth:`MetricsRegistry.render` produces Prometheus text exposition
format (``text/plain; version=0.0.4``); :func:`parse_exposition`
reverses it (tests and the CI smoke step use it to assert on scraped
metrics without a Prometheus dependency).

Naming follows ``repro_<subsystem>_<name>_<unit>`` with bounded label
cardinality — see DESIGN.md §6 for the conventions and the full metric
inventory.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "default_registry",
    "gauge",
    "histogram",
    "parse_exposition",
]

#: Default histogram bounds: latency-flavored seconds from 1ms to ~2min.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: "Sequence[str]") -> "tuple[str, ...]":
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _fmt_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _fmt_value(bound)


def _labels_text(labels: "Mapping[str, str]") -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + body + "}"


class _Child:
    """Base for one (metric, label-values) time series."""

    __slots__ = ("_lock",)

    def __init__(self):
        self._lock = threading.Lock()


class Counter(_Child):
    """A monotonically increasing total."""

    __slots__ = ("_value",)

    def __init__(self):
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Child):
    """A value that goes up and down."""

    __slots__ = ("_value",)

    def __init__(self):
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Child):
    """Fixed cumulative buckets plus running sum and count.

    ``observe(v)`` increments every bucket whose upper bound is >= ``v``
    (rendered cumulatively), the total count, and the value sum.  The
    ``+Inf`` bucket is implicit and always present.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: "Sequence[float]" = DEFAULT_BUCKETS):
        super().__init__()
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> "list[tuple[float, int]]":
        """``(bound, cumulative_count)`` pairs including ``+Inf``."""
        with self._lock:
            counts = list(self.counts)
        total = 0
        out = []
        for bound, n in zip((*self.buckets, math.inf), counts):
            total += n
            out.append((bound, total))
        return out


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric: type, help text, labelled children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: "tuple[str, ...]",
        buckets: "Sequence[float] | None" = None,
    ):
        self.name = _check_name(name)
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: "dict[tuple[str, ...], _Child]" = {}
        if not labelnames:
            self._children[()] = self._make_child()

    def _make_child(self) -> _Child:
        if self.kind == "histogram":
            return Histogram(self._buckets or DEFAULT_BUCKETS)
        return _TYPES[self.kind]()

    # ------------------------------------------------------------------
    def labels(self, **labelvalues: str):
        """The child for this label combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _unlabelled(self) -> _Child:
        if self.labelnames:
            raise ValueError(
                f"{self.name} declares labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self._children[()]

    # Unlabelled conveniences: family acts as its own single child.
    def inc(self, amount: float = 1.0) -> None:
        self._unlabelled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabelled().dec(amount)

    def set(self, value: float) -> None:
        self._unlabelled().set(value)

    def observe(self, value: float) -> None:
        self._unlabelled().observe(value)

    @property
    def value(self) -> float:
        return self._unlabelled().value

    # ------------------------------------------------------------------
    def samples(self) -> "list[tuple[str, dict, float]]":
        """Flat ``(sample_name, labels, value)`` rows for rendering."""
        with self._lock:
            children = dict(self._children)
        rows: "list[tuple[str, dict, float]]" = []
        for key, child in sorted(children.items()):
            labels = dict(zip(self.labelnames, key))
            if isinstance(child, Histogram):
                for bound, cumulative in child.cumulative():
                    rows.append(
                        (
                            f"{self.name}_bucket",
                            {**labels, "le": _fmt_bound(bound)},
                            float(cumulative),
                        )
                    )
                rows.append((f"{self.name}_sum", labels, child.sum))
                rows.append((f"{self.name}_count", labels, float(child.count)))
            else:
                rows.append((self.name, labels, child.value))
        return rows

    def __repr__(self) -> str:
        return (
            f"_Family({self.name!r}, {self.kind}, "
            f"children={len(self._children)})"
        )


class MetricsRegistry:
    """A process-scoped collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: registering
    the same name again with a matching type/labels/buckets returns the
    existing family (so module-level instrumentation and service wiring
    can both ask for the same metric), while a conflicting
    re-registration raises ``ValueError``.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: "dict[str, _Family]" = {}

    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: "Sequence[str]",
        buckets: "Sequence[float] | None" = None,
    ) -> _Family:
        labelnames = _check_labelnames(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}, cannot "
                        f"re-register as {kind}{labelnames}"
                    )
                return existing
            family = _Family(name, kind, help_text, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: "Sequence[str]" = ()
    ) -> _Family:
        return self._register(name, "counter", help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: "Sequence[str]" = ()
    ) -> _Family:
        return self._register(name, "gauge", help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: "Sequence[str]" = (),
        buckets: "Sequence[float]" = DEFAULT_BUCKETS,
    ) -> _Family:
        return self._register(name, "histogram", help_text, labelnames, buckets)

    def get(self, name: str) -> "_Family | None":
        return self._families.get(name)

    def families(self) -> "list[_Family]":
        with self._lock:
            return list(self._families.values())

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: "list[str]" = []
        for family in sorted(self.families(), key=lambda f: f.name):
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for sample_name, labels, value in family.samples():
                lines.append(
                    f"{sample_name}{_labels_text(labels)} {_fmt_value(value)}"
                )
        return "\n".join(lines) + "\n" if lines else ""

    def collect(self) -> dict:
        """JSON-pure snapshot (name -> samples) for tests/debugging."""
        return {
            family.name: {
                "type": family.kind,
                "help": family.help,
                "samples": [
                    {"name": name, "labels": labels, "value": value}
                    for name, labels, value in family.samples()
                ],
            }
            for family in self.families()
        }

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __repr__(self) -> str:
        return f"MetricsRegistry(families={len(self._families)})"


#: The process-global registry: module-level instrumentation (engine
#: cache, session) registers here, and the service defaults to it.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _DEFAULT


def counter(
    name: str, help_text: str = "", labelnames: "Sequence[str]" = ()
) -> _Family:
    """Get-or-create a counter on the default registry."""
    return _DEFAULT.counter(name, help_text, labelnames)


def gauge(
    name: str, help_text: str = "", labelnames: "Sequence[str]" = ()
) -> _Family:
    """Get-or-create a gauge on the default registry."""
    return _DEFAULT.gauge(name, help_text, labelnames)


def histogram(
    name: str,
    help_text: str = "",
    labelnames: "Sequence[str]" = (),
    buckets: "Sequence[float]" = DEFAULT_BUCKETS,
) -> _Family:
    """Get-or-create a histogram on the default registry."""
    return _DEFAULT.histogram(name, help_text, labelnames, buckets)


# ----------------------------------------------------------------------
# Exposition parsing (tests + CI smoke assertions)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')


def _unescape(value: str) -> str:
    return (
        value.replace(r"\"", '"').replace(r"\n", "\n").replace("\\\\", "\\")
    )


def parse_exposition(
    text: str,
) -> "dict[str, dict[tuple[tuple[str, str], ...], float]]":
    """Parse Prometheus text exposition into nested dicts.

    Returns ``{sample_name: {sorted_label_items: value}}`` where
    ``sorted_label_items`` is a tuple of ``(label, value)`` pairs — e.g.
    ``parsed["repro_jobs_total"][(("outcome", "ok"),)]``.  Comment and
    blank lines are skipped; malformed sample lines raise ``ValueError``
    (a scrape that fails to parse should fail the assert, not pass
    silently).
    """
    parsed: "dict[str, dict[tuple[tuple[str, str], ...], float]]" = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted(
                (name, _unescape(value))
                for name, value in _LABEL_PAIR_RE.findall(labels_text)
            )
        )
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        parsed.setdefault(match.group("name"), {})[labels] = value
    return parsed
