"""repro.perf — vectorized, sharded performance simulation (Fig. 5/6).

The batched counterpart of the scalar
:class:`repro.cmp.simulator.CmpSimulator`: the identical contention
model — bursty per-category arrivals, L1 port and L2 bank occupancy
with read-before-write extras, port stealing bounded by the store
queue, stall-to-IPC conversion — evaluated as NumPy kernels over
``(trials, cores, cycles)`` arrays, with many independent replicate
trials per (CMP, workload, protection) cell in one shot.

* :mod:`repro.perf.arrivals` — burst-chain prefix scan + Poisson
  category batches (bit-exact with the scalar chain on equal draws).
* :mod:`repro.perf.resources` — cumulative-occupancy closed forms for
  port/bank booking and the exact steal-queue recursion.
* :mod:`repro.perf.kernel` — trial evaluation and the scalar-matched
  single-trial replay used for oracle testing.
* :mod:`repro.perf.backend` — block-keyed RNG lanes, multiprocessing
  sharding, on-disk caching; results are bit-identical for any worker
  count or chunk size.

The scalar simulator stays as the property-tested oracle; modelling
assumptions and the vectorization derivations are documented in
``DESIGN.md`` at the repository root.
"""

from .arrivals import (
    ACCESS_CATEGORIES,
    Arrivals,
    burst_parameters,
    burst_states_from_draws,
    matched_arrivals,
    sample_arrivals,
)
from .backend import (
    DEFAULT_PERF_BLOCK_SIZE,
    PERF_VERSION,
    PerfComparison,
    PerfResult,
    cell_key,
    compare_performance,
    paired_loss_percent,
    run_performance,
    run_performance_grid,
)
from .kernel import (
    BankAccesses,
    evaluate_trials,
    matched_bank_accesses,
    sample_bank_accesses,
    simulate_matched,
)
from .resources import (
    lindley_backlog,
    port_read_delays,
    staircase_delay,
    steal_port_recursion,
)

__all__ = [
    "ACCESS_CATEGORIES",
    "Arrivals",
    "burst_parameters",
    "burst_states_from_draws",
    "matched_arrivals",
    "sample_arrivals",
    "DEFAULT_PERF_BLOCK_SIZE",
    "PERF_VERSION",
    "PerfComparison",
    "PerfResult",
    "cell_key",
    "compare_performance",
    "paired_loss_percent",
    "run_performance",
    "run_performance_grid",
    "BankAccesses",
    "evaluate_trials",
    "matched_bank_accesses",
    "sample_bank_accesses",
    "simulate_matched",
    "lindley_backlog",
    "port_read_delays",
    "staircase_delay",
    "steal_port_recursion",
]
