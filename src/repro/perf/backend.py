"""Sharded, cached driver for replicated performance simulations.

Mirrors :mod:`repro.engine.runner` for the performance pipeline: the
trial space of one (CMP, workload, protection) cell is divided into
fixed-size RNG blocks, every block draws its arrivals and bank
assignments from its own block-keyed lanes
(:class:`repro.engine.rng.BlockStreams` — lane 0 burst chain, lane 1
event counts, lane 2 bank assignment), blocks are fanned out over a
persistent :class:`repro.engine.executor.SharedExecutor` pool (shared
with the fault-injection engine; sessions keep one warm across cells),
and the per-trial outputs are concatenated in trial order.  Results are therefore **bit-identical for any worker
count and chunk size** — parallelism is purely a throughput knob, the
same contract the fault-injection engine makes.

Cells that share a CMP/workload can be evaluated together through
:func:`run_performance_grid`: all protections of the grid see the same
draws (the paper's matched-pair design), and the booking work for
shared L1/L2 protection modes is computed once.

Per-protection results are memoized through the engine's
:class:`~repro.engine.cache.ResultCache`, keyed via the project-wide
:meth:`~repro.api.spec.ExperimentSpec.content_hash` convention over the
full cell identity (CMP configuration, workload profile, protection,
cycle count, trials, seed, block size, kernel version).
"""

from __future__ import annotations

import dataclasses
import enum
import logging
import time
from dataclasses import dataclass

import numpy as np

from repro.cmp.config import CmpConfig, ProtectionConfig
from repro.obs import emit, memory_phase
from repro.obs.profile import process_usage, usage_delta
from repro.engine.aggregate import MeanEstimate
from repro.engine.cache import ResultCache, cache_key
from repro.engine.executor import SharedExecutor
from repro.engine.rng import BlockStreams, iter_block_slices
from repro.workloads.profiles import WorkloadProfile

from .arrivals import concat_arrivals, sample_arrivals
from .kernel import concat_bank_counts, evaluate_trials, sample_bank_accesses

__all__ = [
    "PERF_VERSION",
    "DEFAULT_PERF_BLOCK_SIZE",
    "PerfResult",
    "PerfComparison",
    "paired_loss_percent",
    "run_performance",
    "run_performance_grid",
    "compare_performance",
]

#: Bump when the kernel's semantics change in ways that invalidate
#: previously cached per-trial results.
PERF_VERSION = 1

_log = logging.getLogger(__name__)

#: Default trials per RNG block.  Performance trials are heavy (a full
#: multi-thousand-cycle contention simulation each), so blocks are much
#: smaller than the fault-injection engine's.
DEFAULT_PERF_BLOCK_SIZE = 32

#: Per-trial array fields of a result, in serialization order.
_RESULT_FIELDS = (
    "aggregate_ipc",
    "l1_reads",
    "l1_writes",
    "l1_fill_evict",
    "l1_extra_reads",
    "l2_reads",
    "l2_writes",
    "l2_fill_evict",
    "l2_extra_reads",
    "l1_port_utilization",
    "l2_bank_utilization",
    "port_steals",
    "forced_steals",
)

_BURST_LANE, _EVENT_LANE, _BANK_LANE = 0, 1, 2


def _jsonable(value):
    """Recursively convert a dataclass/enum tree into JSON-pure shapes."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def cell_key(
    cmp_cfg: CmpConfig,
    profile: WorkloadProfile,
    protection: ProtectionConfig,
    n_cycles: int,
) -> dict:
    """JSON-pure identity of one performance-simulation cell."""
    return {
        "cmp": _jsonable(cmp_cfg),
        "workload": _jsonable(profile),
        "protection": _jsonable(protection),
        "n_cycles": n_cycles,
    }


@dataclass(frozen=True)
class PerfResult:
    """Replicated-trial outcome for one (CMP, workload, protection) cell.

    All array fields hold one value per trial, in trial order
    (independent of scheduling).  Access counts are raw totals over all
    cores and cycles; :meth:`breakdown_estimates` converts them to the
    paper's accesses-per-100-cycles units.
    """

    cmp_name: str
    workload: str
    protection_label: str
    n_cycles: int
    n_trials: int
    seed: int
    block_size: int
    aggregate_ipc: np.ndarray
    l1_reads: np.ndarray
    l1_writes: np.ndarray
    l1_fill_evict: np.ndarray
    l1_extra_reads: np.ndarray
    l2_reads: np.ndarray
    l2_writes: np.ndarray
    l2_fill_evict: np.ndarray
    l2_extra_reads: np.ndarray
    l1_port_utilization: np.ndarray
    l2_bank_utilization: np.ndarray
    port_steals: np.ndarray
    forced_steals: np.ndarray
    elapsed_seconds: float = 0.0
    from_cache: bool = False

    @property
    def trials_per_second(self) -> float:
        return self.n_trials / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def ipc_estimate(self, confidence: float = 0.95) -> MeanEstimate:
        """Aggregate IPC across trials with a normal interval."""
        return MeanEstimate.from_samples(self.aggregate_ipc, confidence)

    def breakdown_estimates(
        self, level: str, confidence: float = 0.95
    ) -> dict:
        """Fig. 6-style per-component estimates, accesses per 100 cycles.

        ``level`` is ``"l1"`` or ``"l2"``; keys match
        :meth:`repro.cmp.stats.CacheAccessBreakdown.as_dict` (the
        instruction-read component is identically zero, as in the
        scalar model's reporting).
        """
        if level not in ("l1", "l2"):
            raise ValueError("level must be 'l1' or 'l2'")
        scale = 100.0 / self.n_cycles
        components = {
            "Read: Inst": np.zeros(self.n_trials),
            "Read: Data": getattr(self, f"{level}_reads") * scale,
            "Write": getattr(self, f"{level}_writes") * scale,
            "Fill/Evict": getattr(self, f"{level}_fill_evict") * scale,
            "Extra Read for 2D Coding": getattr(self, f"{level}_extra_reads") * scale,
        }
        return {
            name: MeanEstimate.from_samples(values, confidence)
            for name, values in components.items()
        }


def paired_loss_percent(
    baseline_ipc: np.ndarray, protected_ipc: np.ndarray
) -> np.ndarray:
    """Per-trial IPC loss in %, safe on fully stalled baselines.

    Mirrors the scalar :class:`repro.cmp.stats.PerformanceComparison`
    guard: a trial whose baseline IPC is zero (every core pinned at the
    stall cap) reports zero loss rather than a NaN from 0/0.
    """
    baseline_ipc = np.asarray(baseline_ipc, dtype=float)
    protected_ipc = np.asarray(protected_ipc, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        loss = (1.0 - protected_ipc / baseline_ipc) * 100.0
    return np.where(baseline_ipc > 0.0, loss, 0.0)


@dataclass(frozen=True)
class PerfComparison:
    """Matched-pair baseline-vs-protected comparison (one Fig. 5 bar).

    Both members ran on identical draws, so the per-trial loss is a
    paired difference — the variance-reduction trick the scalar path
    gets from reusing one seed, now with honest replication on top.
    """

    baseline: PerfResult
    protected: PerfResult

    @property
    def loss_percent_per_trial(self) -> np.ndarray:
        return paired_loss_percent(
            self.baseline.aggregate_ipc, self.protected.aggregate_ipc
        )

    @property
    def ipc_loss_percent(self) -> float:
        """Mean IPC loss in % (the Fig. 5 y-axis), clipped at zero."""
        return max(0.0, float(self.loss_percent_per_trial.mean()))

    def loss_estimate(self, confidence: float = 0.95) -> MeanEstimate:
        return MeanEstimate.from_samples(self.loss_percent_per_trial, confidence)


# ----------------------------------------------------------------------
# Sharded execution
# ----------------------------------------------------------------------

#: Upper bound on trials x cores x cycles per kernel invocation: blocks
#: are *sampled* independently (that is the invariance contract) but
#: *evaluated* together in groups up to this budget, so the per-cycle
#: steal recursion and the bank bookkeeping amortize over many blocks.
_EVAL_GROUP_ELEMENTS = 8_000_000


def _evaluation_groups(pieces, group_trials: int):
    group: list = []
    covered = 0
    for piece in pieces:
        group.append(piece)
        covered += piece.count
        if covered >= group_trials:
            yield group
            group, covered = [], 0
    if group:
        yield group


def _run_trial_range(
    cmp_cfg: CmpConfig,
    profile: WorkloadProfile,
    protections: dict,
    n_cycles: int,
    seed: int,
    block_size: int,
    first_trial: int,
    last_trial: int,
) -> tuple[dict, dict]:
    """Evaluate trials ``[first_trial, last_trial)`` block by block.

    Draws always cover the whole block and are sliced to the requested
    trials, so any partition of the trial space sees identical
    randomness per trial; sliced blocks are then concatenated into
    evaluation groups purely for throughput.

    Returns the per-label field arrays plus the shard's telemetry
    (wall-clock seconds, trial and block counts, and the worker's
    resource deltas — observational only).
    """
    started = time.perf_counter()
    usage0 = process_usage()
    with_extras = any(p.protect_l2 for p in protections.values())
    per_label: dict[str, list] = {label: [] for label in protections}
    pieces = iter_block_slices(first_trial, last_trial, block_size)
    per_trial = cmp_cfg.n_cores * n_cycles
    group_trials = max(block_size, _EVAL_GROUP_ELEMENTS // max(per_trial, 1))
    for group in _evaluation_groups(pieces, group_trials):
        arrival_parts = []
        bank_parts = []
        offsets = []
        offset = 0
        for piece in group:
            streams = BlockStreams(seed, piece.block)
            arrivals = sample_arrivals(
                streams.lane(_BURST_LANE),
                streams.lane(_EVENT_LANE),
                block_size,
                cmp_cfg,
                profile,
                n_cycles,
            )
            bank_counts = sample_bank_accesses(
                streams.lane(_BANK_LANE), arrivals, cmp_cfg.l2.n_banks, with_extras
            )
            arrival_parts.append(arrivals.sliced(piece.start, piece.stop))
            bank_parts.append(bank_counts.sliced(piece.start, piece.stop))
            offsets.append(offset)
            offset += piece.count
        outputs = evaluate_trials(
            concat_arrivals(arrival_parts),
            concat_bank_counts(bank_parts, offsets),
            cmp_cfg,
            profile,
            protections,
            n_cycles,
        )
        for label, fields in outputs.items():
            per_label[label].append(fields)
    merged = {
        label: {
            name: np.concatenate([chunk[name] for chunk in chunks])
            for name in _RESULT_FIELDS
        }
        for label, chunks in per_label.items()
    }
    usage = usage_delta(usage0)
    stats = {
        "trials": last_trial - first_trial,
        "labels": len(protections),
        "elapsed": round(time.perf_counter() - started, 6),
        "pid": usage["pid"],
        "cpu_seconds": usage["cpu_seconds"],
        "max_rss_bytes": usage["max_rss_bytes"],
    }
    return merged, stats


def _worker(payload: tuple) -> tuple[dict, dict]:
    return _run_trial_range(*payload)


def _chunk_ranges(
    n_trials: int, block_size: int, chunk_blocks: "int | None", n_workers: int
) -> list:
    total_blocks = -(-n_trials // block_size)
    if chunk_blocks is None:
        # Whole-run chunks in-process; one chunk per worker otherwise.
        # Chunking cannot change results, so this is purely a throughput
        # choice: bigger chunks amortize the per-call kernel overhead.
        chunk_blocks = max(1, -(-total_blocks // n_workers))
    ranges = []
    for first_block in range(0, total_blocks, chunk_blocks):
        first = first_block * block_size
        last = min((first_block + chunk_blocks) * block_size, n_trials)
        ranges.append((first, last))
    return ranges


def _cache_params(
    cmp_cfg, profile, protection, n_cycles, n_trials, seed, block_size
) -> dict:
    return {
        "perf_version": PERF_VERSION,
        "cell": cell_key(cmp_cfg, profile, protection, n_cycles),
        "n_trials": n_trials,
        "seed": seed,
        "block_size": block_size,
    }


def run_performance_grid(
    cmp_cfg: CmpConfig,
    profile: WorkloadProfile,
    protections: dict,
    *,
    n_cycles: int,
    n_trials: int,
    seed: int,
    n_workers: int = 1,
    block_size: int = DEFAULT_PERF_BLOCK_SIZE,
    chunk_blocks: "int | None" = None,
    cache: "ResultCache | None" = None,
    executor: "SharedExecutor | None" = None,
    mp_context=None,
) -> dict:
    """Run every protection of a grid on shared draws; returns
    ``{label: PerfResult}``.

    Cached labels are served from the result cache; the remaining ones
    are computed together in one pass over the trial space (shared
    arrivals, shared bank draws, shared booking work per L1/L2 mode).
    ``chunk_blocks`` (blocks per work item) defaults to an even split
    over the workers; like the worker count it cannot change results.

    ``executor`` shares a persistent worker pool across grids (the same
    :class:`~repro.engine.executor.SharedExecutor` the fault-injection
    engine uses; a :class:`repro.api.Session` passes its own), so a
    multi-cell sweep forks once instead of once per cell; ``n_workers``
    is ignored when one is given.  ``mp_context`` picks the start
    method for the transient pool built otherwise.
    """
    if n_cycles < 100:
        raise ValueError("n_cycles must be at least 100")
    if n_trials < 1:
        raise ValueError("n_trials must be positive")
    if n_workers < 1 or block_size < 1:
        raise ValueError("workers and block_size must be positive")
    if chunk_blocks is not None and chunk_blocks < 1:
        raise ValueError("chunk_blocks must be positive")
    if not protections:
        raise ValueError("need at least one protection configuration")
    if executor is not None:
        n_workers = executor.workers

    def build(label: str, fields: dict, elapsed: float, cached: bool) -> PerfResult:
        return PerfResult(
            cmp_name=cmp_cfg.name,
            workload=profile.name,
            protection_label=protections[label].label,
            n_cycles=n_cycles,
            n_trials=n_trials,
            seed=seed,
            block_size=block_size,
            elapsed_seconds=elapsed,
            from_cache=cached,
            **{name: np.asarray(fields[name]) for name in _RESULT_FIELDS},
        )

    results: dict[str, PerfResult] = {}
    keys: dict[str, str] = {}
    missing: dict[str, ProtectionConfig] = {}
    for label, protection in protections.items():
        params = _cache_params(
            cmp_cfg, profile, protection, n_cycles, n_trials, seed, block_size
        )
        keys[label] = cache_key(params)
        payload = cache.load(keys[label]) if cache is not None else None
        if payload is not None and all(name in payload for name in _RESULT_FIELDS):
            results[label] = build(label, payload, 0.0, cached=True)
        else:
            missing[label] = protection

    emit(
        "perf.grid.start",
        logger=_log,
        level=logging.INFO,
        cmp=cmp_cfg.name,
        workload=profile.name,
        n_trials=n_trials,
        n_cycles=n_cycles,
        labels=list(protections),
        cached_labels=sorted(results),
        keys=keys,
    )
    if missing:
        started = time.perf_counter()
        ranges = _chunk_ranges(n_trials, block_size, chunk_blocks, n_workers)
        payloads = [
            (cmp_cfg, profile, missing, n_cycles, seed, block_size, first, last)
            for first, last in ranges
        ]
        with memory_phase("perf.grid"):
            if executor is not None:
                outcomes = executor.map(_worker, payloads)
            else:
                with SharedExecutor(
                    workers=n_workers, mp_context=mp_context
                ) as transient:
                    outcomes = transient.map(_worker, payloads)
        elapsed = time.perf_counter() - started
        for index, (_, stats) in enumerate(outcomes):
            emit("perf.shard", logger=_log, index=index, **stats)
        for label in missing:
            fields = {
                name: np.concatenate([chunk[label][name] for chunk, _ in outcomes])
                for name in _RESULT_FIELDS
            }
            results[label] = build(label, fields, elapsed, cached=False)
            if cache is not None:
                cache.store(
                    keys[label],
                    {name: fields[name] for name in _RESULT_FIELDS},
                    _cache_params(
                        cmp_cfg, profile, missing[label],
                        n_cycles, n_trials, seed, block_size,
                    ),
                )
    emit(
        "perf.grid.finish",
        logger=_log,
        level=logging.INFO,
        cmp=cmp_cfg.name,
        workload=profile.name,
        from_cache=not missing,
        shards=0 if not missing else len(ranges),
        elapsed=0.0 if not missing else round(elapsed, 6),
    )
    return {label: results[label] for label in protections}


def run_performance(
    cmp_cfg: CmpConfig,
    profile: WorkloadProfile,
    protection: ProtectionConfig,
    **kwargs,
) -> PerfResult:
    """Replicated trials for a single protection configuration."""
    return run_performance_grid(cmp_cfg, profile, {"cell": protection}, **kwargs)[
        "cell"
    ]


def compare_performance(
    cmp_cfg: CmpConfig,
    profile: WorkloadProfile,
    protection: ProtectionConfig,
    **kwargs,
) -> PerfComparison:
    """Matched-pair baseline-vs-protected comparison on shared draws."""
    grid = run_performance_grid(
        cmp_cfg,
        profile,
        {"baseline": ProtectionConfig(label="baseline"), "protected": protection},
        **kwargs,
    )
    return PerfComparison(baseline=grid["baseline"], protected=grid["protected"])
