"""Vectorized bursty arrival generation for the performance kernel.

The scalar :class:`repro.cmp.simulator.CmpSimulator` draws, per core, a
two-state Markov burst chain (persistent ~32-cycle phases) and then
per-cycle Poisson event counts for seven access categories at the
chain-modulated rate.  This module produces the *same stochastic
process* as ``(trials, cores, cycles)`` batches in closed form:

* the burst chain is evaluated without a per-cycle Python loop by
  collapsing each transition into one of three per-cycle actions —
  **toggle** (uniform draw below both transition probabilities flips
  the phase), **reset** (the draw lands between them, forcing a known
  phase) and **hold** — and resolving every cycle's state from the last
  reset index plus the parity of toggles since (a prefix-scan, see
  ``DESIGN.md``);
* the Poisson counts for all categories are drawn as whole-block
  arrays.

Given the same uniform draws, :func:`burst_states_from_draws` is
**bit-exact** with the scalar chain; :func:`matched_arrivals` replays
the scalar simulator's exact per-trial RNG call order so a vectorized
trial can be compared 1:1 against ``CmpSimulator.run`` (see
:mod:`repro.perf.kernel`).  :func:`sample_arrivals` instead draws from
two independent block-keyed engine lanes (burst and events), which is
what makes batched results worker- and chunk-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cmp.config import CmpConfig, CoreConfig
from repro.workloads.profiles import WorkloadProfile

__all__ = [
    "ACCESS_CATEGORIES",
    "MEAN_PHASE_CYCLES",
    "Arrivals",
    "burst_parameters",
    "burst_states_from_draws",
    "category_rates",
    "concat_arrivals",
    "sample_arrivals",
    "matched_arrivals",
]

#: Mean burst/quiet phase length in cycles (the scalar model's constant).
MEAN_PHASE_CYCLES = 32

#: Access-rate categories in the exact order the scalar simulator draws
#: them.  The order is part of the matched-trial RNG contract: changing
#: it would shift every later draw of a replayed trial.
ACCESS_CATEGORIES = (
    "l1_reads",
    "l1_writes",
    "l1_fill_evict",
    "l1_inst",
    "l2_reads",
    "l2_writes",
    "l2_fill_evict",
)


@dataclass(frozen=True)
class Arrivals:
    """Per-category event counts for a batch of trials.

    Every array has shape ``(trials, n_cores, n_cycles)`` and holds
    small non-negative integers (Poisson counts).
    """

    counts: dict

    def __getitem__(self, category: str) -> np.ndarray:
        return self.counts[category]

    @property
    def n_trials(self) -> int:
        return self.counts[ACCESS_CATEGORIES[0]].shape[0]

    def sliced(self, start: int, stop: int) -> "Arrivals":
        """The trials ``[start, stop)`` of this batch (no copies)."""
        return Arrivals({k: v[start:stop] for k, v in self.counts.items()})


def concat_arrivals(parts: "list[Arrivals]") -> Arrivals:
    """Concatenate batches along the trial axis (evaluation grouping)."""
    if len(parts) == 1:
        return parts[0]
    return Arrivals(
        {
            name: np.concatenate([part.counts[name] for part in parts])
            for name in parts[0].counts
        }
    )


def burst_parameters(core: CoreConfig) -> tuple[float, float, float]:
    """``(p_enter, p_exit, quiet_factor)`` of the two-state burst chain.

    Identical to the scalar simulator's derivation: bursts last
    ~:data:`MEAN_PHASE_CYCLES` cycles, the stationary burst share is
    ``burst_fraction``, and the quiet factor renormalizes so the
    long-run mean rate matches the workload profile.
    """
    quiet = (1.0 - core.burst_fraction * core.burstiness) / (1.0 - core.burst_fraction)
    quiet = max(quiet, 0.0)
    p_enter = core.burst_fraction / MEAN_PHASE_CYCLES / max(1.0 - core.burst_fraction, 1e-9)
    p_exit = 1.0 / MEAN_PHASE_CYCLES
    return p_enter, p_exit, quiet


def burst_states_from_draws(
    initial: np.ndarray, draws: np.ndarray, p_enter: float, p_exit: float
) -> np.ndarray:
    """Phase states ``s_t`` of the burst chain, resolved by prefix scan.

    ``initial`` holds ``s_0`` (boolean, shape ``draws.shape[:-1]``);
    ``draws`` the per-transition uniforms ``u_t``.  The chain
    ``s_{t+1} = (u_t >= p_exit) if s_t else (u_t < p_enter)`` is, per
    cycle, a *toggle* (``u < min(p_enter, p_exit)``), a *reset* to the
    state favoured by the larger probability (``min <= u < max``) or a
    *hold* — so ``s_t`` is the last reset value XOR the parity of
    toggles since, computable with ``cumsum`` + ``maximum.accumulate``.
    Bit-exact with the scalar per-cycle loop on the same draws.
    """
    lo = min(p_enter, p_exit)
    hi = max(p_enter, p_exit)
    reset_value = p_enter > p_exit
    toggle = draws < lo
    reset = ~toggle & (draws < hi)
    n_cycles = draws.shape[-1]

    # cum[..., t] = number of toggles among u_0..u_t.
    cum = np.cumsum(toggle, axis=-1, dtype=np.int32)
    indices = np.where(reset, np.arange(n_cycles), -1)
    last_reset = np.maximum.accumulate(indices, axis=-1)
    cum_at_reset = np.take_along_axis(cum, np.maximum(last_reset, 0), axis=-1)
    # after[..., t] = s_{t+1}: toggles since the last reset (or since the
    # initial state when no reset happened yet) decide the parity.
    after = np.where(
        last_reset >= 0,
        reset_value ^ (((cum - cum_at_reset) & 1) != 0),
        initial[..., None] ^ ((cum & 1) != 0),
    )
    states = np.empty(draws.shape, dtype=bool)
    states[..., 0] = initial
    states[..., 1:] = after[..., :-1]
    return states


def category_rates(cmp_cfg: CmpConfig, profile: WorkloadProfile) -> dict:
    """Per-category mean accesses per 100 cycles per core (scaled)."""
    l1 = cmp_cfg.core.l1_traffic_scale
    l2 = cmp_cfg.core.l2_traffic_scale
    return {
        "l1_reads": profile.l1d_reads * l1,
        "l1_writes": profile.l1d_writes * l1,
        "l1_fill_evict": profile.l1d_fill_evict * l1,
        "l1_inst": profile.l1i_reads * l1,
        "l2_reads": profile.l2_reads * l2,
        "l2_writes": profile.l2_writes * l2,
        "l2_fill_evict": profile.l2_fill_evict * l2,
    }


def _poisson_counts(
    rng: np.random.Generator, rate_per_100: float, factors: np.ndarray
) -> np.ndarray:
    # Rates and burst factors are non-negative by construction (the
    # quiet factor is clamped at zero), so the scalar model's defensive
    # clip is the identity here and the draws stay stream-identical.
    lam = rate_per_100 / 100.0 * factors
    return rng.poisson(lam).astype(np.int16)


def sample_arrivals(
    rng_burst: np.random.Generator,
    rng_events: np.random.Generator,
    count: int,
    cmp_cfg: CmpConfig,
    profile: WorkloadProfile,
    n_cycles: int,
) -> Arrivals:
    """Draw one batch of ``count`` trials from two independent streams.

    ``rng_burst`` feeds the burst chain, ``rng_events`` the Poisson
    category counts, so the two populations come from separate engine
    lanes: reconfiguring one can never shift the other's draws.
    """
    core = cmp_cfg.core
    p_enter, p_exit, quiet = burst_parameters(core)
    initial = rng_burst.random((count, cmp_cfg.n_cores)) < core.burst_fraction
    draws = rng_burst.random((count, cmp_cfg.n_cores, n_cycles))
    states = burst_states_from_draws(initial, draws, p_enter, p_exit)
    factors = np.where(states, core.burstiness, quiet)
    rates = category_rates(cmp_cfg, profile)
    # Instruction-fetch reads are never booked on any modelled resource
    # and reported as zero (exactly as the scalar does); the batch
    # sampler skips the draw entirely.  The matched replay keeps it,
    # because the scalar stream's position depends on it.
    counts = {
        name: _poisson_counts(rng_events, rates[name], factors)
        for name in ACCESS_CATEGORIES
        if name != "l1_inst"
    }
    return Arrivals(counts)


def matched_arrivals(
    rng: np.random.Generator,
    cmp_cfg: CmpConfig,
    profile: WorkloadProfile,
    n_cycles: int,
) -> Arrivals:
    """Replay the scalar simulator's exact arrival draws for one trial.

    Makes the identical RNG calls in the identical order as
    ``CmpSimulator.run`` — per core one scalar uniform (initial phase)
    plus ``n_cycles`` transition uniforms, then one Poisson array per
    category — so every count equals the scalar run's bit for bit.  The
    returned batch has a single trial (leading axis of size 1) and
    leaves ``rng`` positioned exactly where the scalar simulator's
    cycle loop would start drawing L2 bank indices.
    """
    core = cmp_cfg.core
    n_cores = cmp_cfg.n_cores
    p_enter, p_exit, quiet = burst_parameters(core)
    initial = np.empty(n_cores, dtype=bool)
    draws = np.empty((n_cores, n_cycles), dtype=float)
    for core_index in range(n_cores):
        initial[core_index] = rng.random() < core.burst_fraction
        draws[core_index] = rng.random(n_cycles)
    states = burst_states_from_draws(initial, draws, p_enter, p_exit)
    factors = np.where(states, core.burstiness, quiet)
    rates = category_rates(cmp_cfg, profile)
    counts = {
        name: _poisson_counts(rng, rates[name], factors)[None, ...]
        for name in ACCESS_CATEGORIES
    }
    return Arrivals(counts)
