"""Batched performance-simulation kernel for the CMP contention model.

Evaluates many independent trials of the Fig. 5/6 contention model in
one shot: arrival batches (:mod:`repro.perf.arrivals`) are pushed
through the closed-form port/bank booking kernels
(:mod:`repro.perf.resources`) and converted into per-trial IPC, access
breakdowns and utilizations.  The stochastic model is *identical* to
the scalar :class:`repro.cmp.simulator.CmpSimulator` — same burst
chain, same Poisson categories, same in-cycle booking order, same
stall-to-IPC conversion — only the execution is batched.

L2 bank contention is evaluated in **sparse event space**: one record
per L2 access (a few per thousand array cells), never a dense
``(trials, banks, cycles)`` tensor.  Events sorted by (trial, bank,
cycle) turn each bank's busy-time into a segmented prefix scan (the
sparse Lindley recursion of ``DESIGN.md``), and within-cycle queueing
positions fall out of the same sort.

Two entry points:

* :func:`evaluate_trials` — evaluate a whole ``(trials, cores,
  cycles)`` batch for several protection configurations at once.
  Protections sharing an L1 mode (off / protected / protected with
  port stealing) or an L2 mode (off / protected) share the
  corresponding booking computation, and baseline/protected results
  come from the *same draws* — the matched-pair design the paper uses.
* :func:`simulate_matched` — replay one scalar trial's exact RNG call
  order through the vectorized kernels and return a
  :class:`~repro.cmp.stats.SimulationResult`.  Integer statistics
  (delays, access counts, steal counters) are bit-exact with
  ``CmpSimulator.run``; floating-point results (IPC) agree to rounding
  because the scalar accumulates stalls cycle by cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cmp.config import CmpConfig, CoreType, ProtectionConfig
from repro.cmp.resources import DEFAULT_STEAL_DEADLINE
from repro.cmp.stats import CacheAccessBreakdown, SimulationResult
from repro.workloads.profiles import WorkloadProfile

from .arrivals import Arrivals, matched_arrivals
from .resources import port_read_delays, steal_port_recursion

__all__ = [
    "BankAccesses",
    "sample_bank_accesses",
    "matched_bank_accesses",
    "concat_bank_counts",
    "evaluate_trials",
    "simulate_matched",
]

#: Access-type ranks in in-cycle booking order (reads are charged delay).
_READ, _WRITE_TYPE, _EXTRA = 0, 1, 2


@dataclass(frozen=True)
class BankAccesses:
    """One record per L2 access of a trial batch: its (trial, core,
    cycle) origin, its type rank (read / write-type / 2D extra) and the
    uniformly drawn bank it lands on.

    ``has_extras`` records whether extra (read-before-write) accesses
    were sampled; they are drawn *after* the demand accesses from the
    same stream, so every L2-unprotected result is identical whether or
    not extras exist.
    """

    n_banks: int
    trial: np.ndarray
    core: np.ndarray
    cycle: np.ndarray
    rank: np.ndarray
    bank: np.ndarray
    has_extras: bool

    def sliced(self, start: int, stop: int) -> "BankAccesses":
        keep = (self.trial >= start) & (self.trial < stop)
        return BankAccesses(
            self.n_banks,
            self.trial[keep] - start,
            self.core[keep],
            self.cycle[keep],
            self.rank[keep],
            self.bank[keep],
            self.has_extras,
        )


def concat_bank_counts(parts: "list[BankAccesses]", offsets: "list[int]") -> BankAccesses:
    """Concatenate batches along the trial axis (evaluation grouping).

    ``offsets[i]`` is the trial index the ``i``-th part starts at in
    the combined batch.
    """
    if len(parts) == 1:
        return parts[0]
    return BankAccesses(
        parts[0].n_banks,
        np.concatenate([p.trial + off for p, off in zip(parts, offsets)]),
        np.concatenate([p.core for p in parts]),
        np.concatenate([p.cycle for p in parts]),
        np.concatenate([p.rank for p in parts]),
        np.concatenate([p.bank for p in parts]),
        parts[0].has_extras,
    )


def _expand(counts: np.ndarray, rank: int) -> tuple:
    """One event row per access for a (trials, cores, cycles) count array."""
    trial, core, cycle = np.nonzero(counts)
    repeats = counts[trial, core, cycle].astype(np.int64)
    return (
        np.repeat(trial, repeats),
        np.repeat(core, repeats),
        np.repeat(cycle, repeats),
        np.full(int(repeats.sum()), rank, dtype=np.int8),
    )


def sample_bank_accesses(
    rng: np.random.Generator,
    arrivals: Arrivals,
    n_banks: int,
    with_extras: bool,
) -> BankAccesses:
    """Draw one uniform bank index per L2 access of a whole batch.

    Exactly the scalar simulator's one-draw-per-access distribution.
    Draw order is all reads, then all writes/fills, then (optionally)
    the 2D extras, so demand assignments are invariant to
    ``with_extras``.
    """
    write_type = arrivals["l2_writes"] + arrivals["l2_fill_evict"]
    parts = [_expand(arrivals["l2_reads"], _READ), _expand(write_type, _WRITE_TYPE)]
    if with_extras:
        parts.append(_expand(write_type, _EXTRA))
    banks = [rng.integers(0, n_banks, size=part[0].size) for part in parts]
    return BankAccesses(
        n_banks,
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
        np.concatenate([p[3] for p in parts]),
        np.concatenate(banks),
        with_extras,
    )


def matched_bank_accesses(
    rng: np.random.Generator,
    arrivals: Arrivals,
    n_banks: int,
    with_extras: bool,
) -> BankAccesses:
    """Replay the scalar simulator's exact per-access bank draws.

    The scalar draws one uniform bank per access in cycle -> core ->
    (reads, writes/fills, extras) order; a single batched ``integers``
    call consumes the identical stream.  The per-access evaluation only
    depends on each access's (cycle, core, type, bank), so the event
    order here need not match the batch sampler's.
    """
    l2_reads = arrivals["l2_reads"][0].astype(np.int64)
    write_type = (arrivals["l2_writes"][0] + arrivals["l2_fill_evict"][0]).astype(
        np.int64
    )
    per_type = [l2_reads, write_type] + ([write_type] if with_extras else [])
    # Segment lengths in scalar draw order: cycle-major, core, type.
    lengths = np.stack([t.T for t in per_type], axis=-1)  # (cycles, cores, types)
    n_cycles, n_cores, n_types = lengths.shape
    flat_lengths = lengths.ravel()
    banks = rng.integers(0, n_banks, size=int(flat_lengths.sum()))
    segment = np.repeat(np.arange(flat_lengths.size), flat_lengths)
    cycle, remainder = np.divmod(segment, n_cores * n_types)
    core, rank = np.divmod(remainder, n_types)
    return BankAccesses(
        n_banks,
        np.zeros(segment.size, dtype=np.int64),
        core,
        cycle,
        rank.astype(np.int8),
        banks,
        with_extras,
    )


# ----------------------------------------------------------------------
# L2 bank booking: sparse segmented scans over access events
# ----------------------------------------------------------------------

def _bank_mode_delay(
    trial: np.ndarray,
    core: np.ndarray,
    cycle: np.ndarray,
    rank: np.ndarray,
    bank: np.ndarray,
    shape: tuple[int, int, int],
    n_banks: int,
    busy_cycles: int,
) -> np.ndarray:
    """Demand-read delay per (trial, core) from sorted access events.

    Events must arrive sorted by (trial, bank, cycle, core, rank).  Per
    (trial, bank, cycle) cell the residual bank work at cycle start
    follows the sparse Lindley form ``V_i = h_i - min_{j<=i} h_j`` with
    ``h_i = busy·N_{i-1} - tau_i`` over that bank's event cells
    (cumulative prior accesses ``N``, cell cycle ``tau`` —
    see DESIGN.md); the segmented running minimum is one global
    ``minimum.accumulate`` after offsetting each (trial, bank) segment
    beyond the value range.  An access's same-cycle queueing position is
    its index within the cell, which the sort hands out for free.
    """
    n_trials, n_cores, n_cycles = shape
    n_events = trial.size
    delay = np.zeros((n_trials, n_cores), dtype=np.int64)
    if n_events == 0:
        return delay

    tb = trial * n_banks + bank
    cell = tb * n_cycles + cycle
    new_cell = np.empty(n_events, dtype=bool)
    new_cell[0] = True
    np.not_equal(cell[1:], cell[:-1], out=new_cell[1:])
    cell_starts = np.flatnonzero(new_cell)
    cell_sizes = np.diff(np.append(cell_starts, n_events))
    # Within-cell queueing position of every event.
    position = np.arange(n_events, dtype=np.int64) - np.repeat(cell_starts, cell_sizes)

    cell_tb = tb[cell_starts]
    cell_tau = cycle[cell_starts].astype(np.int64)
    new_segment = np.empty(cell_starts.size, dtype=bool)
    new_segment[0] = True
    np.not_equal(cell_tb[1:], cell_tb[:-1], out=new_segment[1:])
    segment_id = np.cumsum(new_segment) - 1
    cumulative = np.cumsum(cell_sizes)
    before_cell = cumulative - cell_sizes
    segment_base = before_cell[np.repeat(np.flatnonzero(new_segment),
                                         np.diff(np.append(np.flatnonzero(new_segment),
                                                           cell_starts.size)))]
    prior_in_bank = before_cell - segment_base

    h = busy_cycles * prior_in_bank - cell_tau
    # Segmented running minimum: shift each segment far below the last.
    span = int(busy_cycles) * n_events + n_cycles + 1
    shifted = h - segment_id * span
    running = np.minimum.accumulate(shifted) + segment_id * span
    residual = h - running  # >= 0; start-of-cycle bank backlog

    is_read = rank == _READ
    read_delay = residual[np.repeat(np.arange(cell_starts.size), cell_sizes)][is_read]
    read_delay = read_delay + busy_cycles * position[is_read]
    np.add.at(delay, (trial[is_read], core[is_read]), read_delay)
    return delay


def _bank_read_delays(
    accesses: BankAccesses,
    shape: tuple[int, int, int],
    busy_cycles: int,
    modes: set,
) -> dict:
    """Demand-read queueing delay per (trial, core) at the shared L2.

    Each bank is an independent single server occupying ``busy_cycles``
    per access.  Within a cycle the scalar books accesses core by core
    (each core: reads, writes/fills, extras), so a core's reads wait
    behind the start-of-cycle bank residual plus every earlier
    same-cycle access to the same bank — which is exactly the event's
    position in the (trial, bank, cycle, core, rank) sort order.

    Returns ``{mode: (trials, cores) delay}`` for the requested subset
    of ``{"off", "protected"}``; the sort is shared between modes.
    """
    n_trials, n_cores, n_cycles = shape
    n_banks = accesses.n_banks
    if "protected" in modes and not accesses.has_extras:
        raise ValueError("bank accesses were sampled without 2D extras")

    key = (
        ((accesses.trial * n_banks + accesses.bank) * n_cycles + accesses.cycle)
        * n_cores
        + accesses.core
    ) * 4 + accesses.rank
    order = np.argsort(key)
    trial = accesses.trial[order]
    core = accesses.core[order]
    cycle = accesses.cycle[order]
    rank = accesses.rank[order]
    bank = accesses.bank[order]

    results: dict[str, np.ndarray] = {}
    for mode in sorted(modes):
        if mode == "protected":
            view = (trial, core, cycle, rank, bank)
        else:
            keep = rank != _EXTRA
            view = (trial[keep], core[keep], cycle[keep], rank[keep], bank[keep])
        results[mode] = _bank_mode_delay(
            *view, shape=shape, n_banks=n_banks, busy_cycles=busy_cycles
        )
    return results


# ----------------------------------------------------------------------
# Trial evaluation
# ----------------------------------------------------------------------

def _l1_mode(protection: ProtectionConfig) -> str:
    if not protection.protect_l1:
        return "off"
    return "stolen" if protection.l1_port_stealing else "protected"


def _l2_mode(protection: ProtectionConfig) -> str:
    return "protected" if protection.protect_l2 else "off"


def evaluate_trials(
    arrivals: Arrivals,
    bank_accesses: BankAccesses,
    cmp_cfg: CmpConfig,
    profile: WorkloadProfile,
    protections: dict,
    n_cycles: int,
) -> dict:
    """Evaluate one arrival batch under several protection configs.

    Returns ``{label: {field: per-trial array}}``.  Booking work is
    shared: the three possible L1 modes and two L2 modes are each
    evaluated at most once, and every protection's results come from
    the same draws (matched pairs).
    """
    reads = arrivals["l1_reads"]
    write_type = (arrivals["l1_writes"] + arrivals["l1_fill_evict"]).astype(np.int16)
    n_trials, n_cores, _ = reads.shape
    n_ports = cmp_cfg.l1d.n_ports

    l1_results: dict[str, dict] = {}
    for mode in {_l1_mode(p) for p in protections.values()}:
        if mode == "stolen":
            flat = lambda a: a.reshape(n_trials * n_cores, n_cycles)
            delay, bookings, stolen, forced = steal_port_recursion(
                flat(reads),
                flat(write_type),
                flat(write_type),
                n_ports=n_ports,
                capacity=cmp_cfg.core.store_queue_entries,
                deadline=DEFAULT_STEAL_DEADLINE,
            )
            unflat = lambda a: a.reshape(n_trials, n_cores)
            l1_results[mode] = {
                "delay": unflat(delay),
                "bookings": unflat(bookings),
                "stolen": unflat(stolen),
                "forced": unflat(forced),
                "extra": True,
            }
        else:
            extras = write_type if mode == "protected" else np.int16(0)
            delay, bookings = port_read_delays(reads, write_type, extras, n_ports)
            l1_results[mode] = {
                "delay": delay,
                "bookings": bookings,
                "stolen": np.zeros((n_trials, n_cores), dtype=np.int64),
                "forced": np.zeros((n_trials, n_cores), dtype=np.int64),
                "extra": mode == "protected",
            }

    l2_results = _bank_read_delays(
        bank_accesses,
        (n_trials, n_cores, n_cycles),
        cmp_cfg.l2.bank_busy_cycles,
        {_l2_mode(p) for p in protections.values()},
    )

    axes = (1, 2)
    total = lambda name: arrivals[name].sum(axis=axes, dtype=np.int64)
    l1_reads_total = total("l1_reads")
    l1_writes_total = total("l1_writes")
    l1_fill_total = total("l1_fill_evict")
    l2_reads_total = total("l2_reads")
    l2_writes_total = total("l2_writes")
    l2_fill_total = total("l2_fill_evict")
    l1_write_type_total = l1_writes_total + l1_fill_total
    l2_write_type_total = l2_writes_total + l2_fill_total

    sensitivity = profile.memory_sensitivity
    smt_hiding = (
        cmp_cfg.core.hardware_threads
        if cmp_cfg.core.core_type is CoreType.IN_ORDER_SMT
        else 1
    )
    n_banks = cmp_cfg.l2.n_banks
    busy = cmp_cfg.l2.bank_busy_cycles

    outputs: dict[str, dict] = {}
    for label, protection in protections.items():
        l1 = l1_results[_l1_mode(protection)]
        l2_delay = l2_results[_l2_mode(protection)]
        stall = sensitivity * (l1["delay"] / smt_hiding + l2_delay)
        stall_fraction = np.minimum(stall / n_cycles, 1.0)
        per_core_ipc = profile.base_ipc * (1.0 - stall_fraction)

        l1_extra = l1_write_type_total if l1["extra"] else np.zeros_like(l1_reads_total)
        l2_extra = (
            l2_write_type_total
            if protection.protect_l2
            else np.zeros_like(l2_reads_total)
        )
        l2_accesses = l2_reads_total + l2_write_type_total + l2_extra
        outputs[label] = {
            "aggregate_ipc": per_core_ipc.sum(axis=1),
            "per_core_ipc": per_core_ipc,
            "l1_reads": l1_reads_total,
            "l1_writes": l1_writes_total,
            "l1_fill_evict": l1_fill_total,
            "l1_extra_reads": l1_extra,
            "l2_reads": l2_reads_total,
            "l2_writes": l2_writes_total,
            "l2_fill_evict": l2_fill_total,
            "l2_extra_reads": l2_extra,
            "l1_port_utilization": l1["bookings"].mean(axis=1)
            / (n_cycles * n_ports),
            "l2_bank_utilization": l2_accesses * busy / (n_cycles * n_banks),
            "port_steals": l1["stolen"].sum(axis=1),
            "forced_steals": l1["forced"].sum(axis=1),
        }
    return outputs


def simulate_matched(
    cmp_cfg: CmpConfig,
    profile: WorkloadProfile,
    protection: ProtectionConfig,
    n_cycles: int = 20_000,
    seed: int = 0,
) -> SimulationResult:
    """One trial through the vectorized kernels on the scalar's draws.

    Replays ``CmpSimulator.run``'s exact RNG call order, so all integer
    statistics (delays and hence stalls, access counts, steal counters)
    match the scalar result bit for bit; IPC values agree to float
    rounding (the scalar accumulates per-cycle, the kernel sums once).
    """
    if n_cycles < 100:
        raise ValueError("n_cycles must be at least 100")
    rng = np.random.default_rng(seed)
    arrivals = matched_arrivals(rng, cmp_cfg, profile, n_cycles)
    bank_accesses = matched_bank_accesses(
        rng, arrivals, cmp_cfg.l2.n_banks, with_extras=protection.protect_l2
    )
    out = evaluate_trials(
        arrivals, bank_accesses, cmp_cfg, profile, {"run": protection}, n_cycles
    )["run"]

    scale = 100.0 / n_cycles
    l1_breakdown = CacheAccessBreakdown(
        inst_reads=0.0,
        data_reads=int(out["l1_reads"][0]) * scale,
        writes=int(out["l1_writes"][0]) * scale,
        fill_evict=int(out["l1_fill_evict"][0]) * scale,
        extra_2d_reads=int(out["l1_extra_reads"][0]) * scale,
    )
    l2_breakdown = CacheAccessBreakdown(
        inst_reads=0.0,
        data_reads=int(out["l2_reads"][0]) * scale,
        writes=int(out["l2_writes"][0]) * scale,
        fill_evict=int(out["l2_fill_evict"][0]) * scale,
        extra_2d_reads=int(out["l2_extra_reads"][0]) * scale,
    )
    return SimulationResult(
        cmp_name=cmp_cfg.name,
        workload=profile.name,
        protection_label=protection.label,
        cycles=n_cycles,
        aggregate_ipc=float(out["aggregate_ipc"][0]),
        per_core_ipc=[float(v) for v in out["per_core_ipc"][0]],
        l1_breakdown=l1_breakdown,
        l2_breakdown=l2_breakdown,
        l1_port_utilization=float(out["l1_port_utilization"][0]),
        l2_bank_utilization=float(out["l2_bank_utilization"][0]),
        port_steals=int(out["port_steals"][0]),
        forced_steals=int(out["forced_steals"][0]),
    )
