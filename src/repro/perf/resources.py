"""Vectorized resource booking: cumulative-occupancy closed forms.

The scalar schedulers in :mod:`repro.cmp.resources` book accesses one
at a time onto the earliest free port/bank slot.  Because every port is
identical with unit occupancy (and every bank is a single server with
fixed occupancy), the greedy booking is *exactly* a discrete
work-conserving queue, so its whole trajectory has a closed form:

* the residual backlog obeys the Lindley recursion
  ``W_{t+1} = max(0, W_t + a_t - capacity)``, whose solution is a
  cumulative sum minus its clipped running minimum
  (:func:`lindley_backlog`) — no per-cycle Python loop;
* the queueing delay of the ``j``-th unit access arriving behind ``W``
  backlogged units on ``N`` ports is ``floor((W + j) / N)``, so a whole
  cycle's demand-read delay is a difference of closed-form staircase
  sums (:func:`staircase_delay`).

Port stealing is the one genuinely sequential piece: the deferred-read
queue's service (idle port slots) feeds back into the port backlog via
overflow and deadline expiry.  :func:`steal_port_recursion` replays the
exact :class:`~repro.cmp.resources.StealQueue` semantics with one tiny
per-cycle step vectorized across all trials and cores at once — the
cost is O(cycles), not O(trials x cycles x events).  Every function
here is property-tested against the scalar schedulers
(``tests/test_perf_kernel.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lindley_backlog",
    "staircase_delay",
    "port_read_delays",
    "steal_port_recursion",
]


def lindley_backlog(work: np.ndarray, capacity: int) -> np.ndarray:
    """Start-of-cycle backlog of a queue draining ``capacity`` per cycle.

    ``work[..., t]`` units arrive in cycle ``t``; the returned
    ``B[..., t]`` is the backlog *before* cycle ``t``'s arrivals:
    ``B_0 = 0``, ``B_{t+1} = max(0, B_t + work_t - capacity)``.  Closed
    form: with ``S_t = cumsum(work - capacity)``,
    ``B_{t+1} = S_t - min(0, min_{u<=t} S_u)``.
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    slack = np.cumsum(work.astype(np.int64) - capacity, axis=-1)
    floor = np.minimum(np.minimum.accumulate(slack, axis=-1), 0)
    backlog = np.empty_like(slack)
    backlog[..., 0] = 0
    backlog[..., 1:] = (slack - floor)[..., :-1]
    return backlog


def _floor_ramp(x: np.ndarray, n: int) -> np.ndarray:
    """``f(x) = sum_{j=0}^{x-1} floor(j / n)`` elementwise."""
    k, m = np.divmod(x, n)
    return n * k * (k - 1) // 2 + m * k


def staircase_delay(backlog: np.ndarray, count: np.ndarray, n_ports: int) -> np.ndarray:
    """Total queueing delay of ``count`` unit accesses behind ``backlog``.

    Access ``j`` (0-based) of the cycle waits ``floor((B + j) / N)``
    cycles; the sum telescopes to ``f(B + count) - f(B)`` with the
    staircase sum ``f`` of :func:`_floor_ramp` (for a single port the
    staircase is a plain arithmetic ramp).
    """
    backlog = np.asarray(backlog, dtype=np.int64)
    if n_ports == 1:
        return backlog * count + count * (count - 1) // 2
    return _floor_ramp(backlog + count, n_ports) - _floor_ramp(backlog, n_ports)


def port_read_delays(
    reads: np.ndarray,
    write_type: np.ndarray,
    extras: np.ndarray,
    n_ports: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form port booking for the no-stealing configurations.

    Within each cycle demand reads book first (and are the only
    accesses charged delay), then writes/fills, then the read-before-
    write extras.  Returns ``(read_delay_total, bookings_total)`` per
    leading lane, both summed over the cycle axis.

    Implementation note: this is :func:`lindley_backlog` +
    :func:`staircase_delay` (the property-tested reference pair) fused
    into an in-place ``int32`` pipeline — on a memory-bound machine the
    closed form is bandwidth-limited, so every avoided pass counts.
    The ``int32`` fast path is guarded by the total booked work; the
    reference ``int64`` path handles pathological volumes.
    """
    n_cycles = reads.shape[-1]
    work = np.add(reads, write_type, dtype=np.int32)
    if np.ndim(extras) > 0 or extras:
        work += extras
    bookings = work.sum(axis=-1, dtype=np.int64)
    if int(bookings.max(initial=0)) + n_ports * n_cycles >= 2**31:
        backlog = lindley_backlog(work, n_ports)
        return staircase_delay(backlog, reads, n_ports).sum(axis=-1), bookings

    work -= n_ports
    np.cumsum(work, axis=-1, out=work)              # slack prefix sums
    floor = np.minimum.accumulate(work, axis=-1)
    np.minimum(floor, 0, out=floor)
    after = np.subtract(work, floor, out=floor)     # backlog after cycle t
    # B_t = after[t-1] (B_0 = 0): pair each cycle's backlog with the
    # *next* cycle's reads instead of materializing a shifted array.
    later_reads = reads[..., 1:]
    if n_ports == 1:
        ramp = np.multiply(reads, reads - 1, dtype=np.int32)
        delay = (
            np.multiply(after[..., :-1], later_reads, dtype=np.int64).sum(axis=-1)
            + ramp.sum(axis=-1, dtype=np.int64) // 2
        )
    else:
        backlog = after[..., :-1].astype(np.int64)
        delay = (
            _floor_ramp(backlog + later_reads, n_ports) - _floor_ramp(backlog, n_ports)
        ).sum(axis=-1)
        delay += _floor_ramp(reads[..., 0].astype(np.int64), n_ports)
    return delay, bookings


def steal_port_recursion(
    reads: np.ndarray,
    write_type: np.ndarray,
    extras: np.ndarray,
    *,
    n_ports: int,
    capacity: int,
    deadline: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Exact port booking with the bounded, deadlined steal queue.

    Inputs are ``(lanes, cycles)`` integer arrays (one lane per
    trial x core).  Replays the scalar in-cycle order bit for bit:
    demand reads book (charged delay), writes/fills book, extras push
    into the FIFO steal queue (overflow books a contending read at
    once), the queue drains into truly idle slots — on a multi-ported
    cache one port stays reserved for demand — and finally entries
    whose ``deadline`` passed issue as contending reads.

    The FIFO queue is tracked with three cumulative counters per lane
    (pushed ``P``, removed ``C``, backlog ``W``) plus a ``deadline``-
    slot ring buffer of past ``P`` values: an entry pushed at cycle
    ``t`` expires at ``t + deadline`` iff its index still exceeds the
    removals, so expiries are ``max(0, P_{t-deadline} - C)`` — no
    per-entry state.

    Returns ``(read_delay, bookings, stolen, forced)`` per lane.
    """
    if reads.ndim != 2:
        raise ValueError("expected (lanes, cycles) arrays")
    n_lanes, n_cycles = reads.shape
    reserve = 1 if n_ports > 1 else 0

    backlog = np.zeros(n_lanes, dtype=np.int64)          # W: residual port work
    pushed = np.zeros(n_lanes, dtype=np.int64)           # P: cumulative queue pushes
    removed = np.zeros(n_lanes, dtype=np.int64)          # C: cumulative removals
    pushed_history = np.zeros((deadline, n_lanes), dtype=np.int64)
    read_delay = np.zeros(n_lanes, dtype=np.int64)
    stolen = np.zeros(n_lanes, dtype=np.int64)
    forced = np.zeros(n_lanes, dtype=np.int64)

    # Cycle-major layout makes every per-cycle slice contiguous.
    reads_t = np.ascontiguousarray(reads.T, dtype=np.int64)
    demand_t = np.ascontiguousarray(reads.T + write_type.T, dtype=np.int64)
    extras_t = np.ascontiguousarray(extras.T, dtype=np.int64)
    if n_ports == 1:
        # Per-cycle arithmetic ramps precomputed outside the loop.
        ramp_t = (reads_t * (reads_t - 1)) // 2

    for cycle in range(n_cycles):
        r = reads_t[cycle]
        e = extras_t[cycle]

        if n_ports == 1:
            read_delay += backlog * r + ramp_t[cycle]
        else:
            read_delay += staircase_delay(backlog, r, n_ports)
        backlog += demand_t[cycle]

        accepted = np.minimum(e, capacity - (pushed - removed))
        overflow = e - accepted
        pushed += accepted
        backlog += overflow

        usable = np.maximum(n_ports - reserve - backlog, 0)
        drained = np.minimum(usable, pushed - removed)
        removed += drained
        stolen += drained

        expired = np.maximum(pushed_history[cycle % deadline] - removed, 0)
        removed += expired
        backlog += expired
        forced += overflow
        forced += expired

        np.maximum(backlog - n_ports, 0, out=backlog)
        pushed_history[cycle % deadline] = pushed

    # Bookings = every schedule() call: demand traffic plus the forced
    # (overflowed/expired) extras; stolen drains never book a port.
    bookings = demand_t.sum(axis=0) + forced
    return read_delay, bookings, stolen, forced
