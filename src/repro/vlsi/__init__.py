"""Cacti-like analytical VLSI cost models (area, delay, dynamic energy)."""

from .cacti import ArrayOrganization, OptimizationTarget, SramArrayModel
from .technology import DEFAULT_TECHNOLOGY, TechnologyParameters

__all__ = [
    "ArrayOrganization",
    "OptimizationTarget",
    "SramArrayModel",
    "DEFAULT_TECHNOLOGY",
    "TechnologyParameters",
]
