"""Technology constants for the analytical SRAM cost model.

The paper models its caches with a modified Cacti 4.0 at a 70nm process.
Absolute joules/mm²/ps are irrelevant for the reproduction — every figure
normalizes against a baseline configuration — so the constants below are
*relative* weights chosen to preserve the structural relationships Cacti
captures: wordline energy grows with row width, bitline energy with the
number of activated columns and their height, sense amps and I/O with the
bits actually read, and decoder/peripheral energy roughly with the log of
the array dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyParameters", "DEFAULT_TECHNOLOGY"]


@dataclass(frozen=True)
class TechnologyParameters:
    """Relative energy/area/delay weights of SRAM structures.

    The defaults approximate the 70nm design point used in the paper; they
    are deliberately simple, dimensionless weights (per cell, per column,
    per bit, ...) rather than calibrated physical constants.
    """

    #: Energy to swing one cell's wordline segment (per cell on the row).
    wordline_energy_per_cell: float = 1.0
    #: Energy to (dis)charge one bitline segment (per activated column, per
    #: cell of segment height).
    bitline_energy_per_cell: float = 0.02
    #: Energy per sense amplifier activation (per column sensed).
    sense_energy_per_column: float = 4.0
    #: Energy per bit driven through the column mux / output drivers.
    #: This (together with the decoder term) is the access energy component
    #: that does not scale with the interleaving degree, and it is what
    #: keeps the Fig. 2 ratios in the single digits.
    output_energy_per_bit: float = 10.0
    #: Energy per 2-input XOR in the code logic.
    xor_gate_energy: float = 0.15
    #: Decoder + control overhead per access, per log2(rows).
    decoder_energy_per_level: float = 1.5

    #: Area of one SRAM cell (arbitrary units).
    cell_area: float = 1.0
    #: Area of one sense-amp / write-driver column circuit, expressed in
    #: cell areas; shared by ``interleave`` columns when bit-interleaved.
    column_io_area: float = 12.0
    #: Area of one 2-input XOR, in cell areas.
    xor_gate_area: float = 3.0

    #: Delay of one 2-input XOR/logic level (arbitrary units).
    gate_delay: float = 1.0
    #: Wire delay per cell pitch along a wordline.
    wordline_delay_per_cell: float = 0.01
    #: Delay per cell pitch along a bitline segment.
    bitline_delay_per_cell: float = 0.02


#: Shared default technology point (the paper's 70nm assumption).
DEFAULT_TECHNOLOGY = TechnologyParameters()
