"""Analytical SRAM array cost model (a Cacti-4.0 stand-in).

The paper uses a modified Cacti 4.0 to quantify how physical bit
interleaving and stronger codes change dynamic read energy, area and
delay.  Cacti itself is a large C program we cannot ship here, so this
module provides an analytical model that keeps the structural drivers
Cacti captures:

* **Wordline energy** grows with the width of the activated row segment,
  which is the codeword width times the interleaving degree unless the
  design pays for divided (segmented) wordlines.
* **Bitline + sense energy** grows with the number of columns activated
  per access and with the bitline segment height.
* **Sense-amp sharing** is what makes interleaving attractive for layout,
  but every additional interleaved word pseudo-reads its columns on each
  access — the power cost the paper's Figure 2 quantifies.
* **Optimization targets** (delay-optimal, power-optimal, balanced) trade
  wordline/bitline segmentation against area and delay, with large,
  wide-word arrays having much less room to optimize (the 4MB L2 case).

All outputs are relative units; every use in the benchmarks normalizes to
a baseline configuration, matching the paper's presentation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from .technology import DEFAULT_TECHNOLOGY, TechnologyParameters

__all__ = ["OptimizationTarget", "ArrayOrganization", "SramArrayModel"]


class OptimizationTarget(enum.Enum):
    """Cacti-style design-space optimization objective."""

    DELAY = "delay"
    DELAY_AREA = "delay_area"
    BALANCED = "power_delay_area"
    POWER = "power"


@dataclass(frozen=True)
class ArrayOrganization:
    """Resolved physical organization of one SRAM bank."""

    rows: int
    physical_columns: int
    wordline_segments: int
    bitline_segment_rows: int

    @property
    def activated_columns(self) -> int:
        """Columns activated (and sensed) on one access."""
        return max(1, self.physical_columns // self.wordline_segments)


class SramArrayModel:
    """Relative energy/area/delay model of one SRAM bank.

    Parameters
    ----------
    data_bits_per_word:
        Logical data word width (64 for the L1, 256 for the L2 studies).
    check_bits_per_word:
        Stored check bits per word (0 for an unprotected array).
    n_words:
        Number of logical words in the bank.
    interleave_degree:
        Physical bit interleaving degree ``D``.
    optimization:
        Cacti-style optimization target.
    technology:
        Relative technology weights.
    """

    #: Wordline segmentation is only practical for small banks; large,
    #: wide-word banks (the 4MB L2 case) are already divided into many
    #: banks and cannot afford divided wordlines on top (this is what makes
    #: the 4MB curves in Fig. 2(c) steep for every optimization target).
    _MAX_SEGMENTABLE_BANK_BITS = 2 * 1024 * 1024

    def __init__(
        self,
        data_bits_per_word: int,
        check_bits_per_word: int,
        n_words: int,
        interleave_degree: int = 1,
        optimization: OptimizationTarget = OptimizationTarget.DELAY_AREA,
        technology: TechnologyParameters = DEFAULT_TECHNOLOGY,
    ):
        if data_bits_per_word < 1 or check_bits_per_word < 0 or n_words < 1:
            raise ValueError("invalid word geometry")
        if interleave_degree < 1:
            raise ValueError("interleave_degree must be >= 1")
        if n_words % interleave_degree:
            raise ValueError("n_words must be a multiple of the interleave degree")
        self.data_bits = data_bits_per_word
        self.check_bits = check_bits_per_word
        self.n_words = n_words
        self.interleave = interleave_degree
        self.optimization = optimization
        self.tech = technology
        self.organization = self._organize()

    # ------------------------------------------------------------------
    @property
    def codeword_bits(self) -> int:
        return self.data_bits + self.check_bits

    @property
    def capacity_bits(self) -> int:
        return self.n_words * self.codeword_bits

    # ------------------------------------------------------------------
    def _organize(self) -> ArrayOrganization:
        rows = self.n_words // self.interleave
        physical_columns = self.codeword_bits * self.interleave

        segmentable = self.capacity_bits <= self._MAX_SEGMENTABLE_BANK_BITS
        if self.optimization is OptimizationTarget.POWER:
            wordline_segments = min(self.interleave, 4) if segmentable else 1
            target_height = 32
        elif self.optimization is OptimizationTarget.BALANCED:
            wordline_segments = min(self.interleave, 2) if segmentable else 1
            target_height = 64
        else:  # DELAY or DELAY_AREA
            wordline_segments = 1
            target_height = 128
        bitline_segment_rows = min(rows, target_height)
        return ArrayOrganization(
            rows=rows,
            physical_columns=physical_columns,
            wordline_segments=wordline_segments,
            bitline_segment_rows=bitline_segment_rows,
        )

    # ------------------------------------------------------------------
    # energy
    # ------------------------------------------------------------------
    def read_energy(self) -> float:
        """Relative dynamic energy of one read access."""
        tech = self.tech
        org = self.organization
        activated = org.activated_columns

        wordline = tech.wordline_energy_per_cell * activated
        bitline = tech.bitline_energy_per_cell * org.bitline_segment_rows * activated
        sense = tech.sense_energy_per_column * activated
        output = tech.output_energy_per_bit * self.codeword_bits
        decoder = tech.decoder_energy_per_level * math.log2(max(org.rows, 2))
        return wordline + bitline + sense + output + decoder

    def write_energy(self) -> float:
        """Relative dynamic energy of one write access (modelled equal to a
        read, as the paper assumes in its Fig. 7 power estimates)."""
        return self.read_energy()

    # ------------------------------------------------------------------
    # area
    # ------------------------------------------------------------------
    def area(self) -> float:
        """Relative area of the bank (cells + column I/O + segmentation)."""
        tech = self.tech
        org = self.organization
        cell_area = tech.cell_area * self.capacity_bits
        # One column-I/O circuit is shared by `interleave` physical columns.
        io_circuits = org.physical_columns / max(self.interleave, 1)
        io_area = tech.column_io_area * io_circuits
        # Each additional wordline segment duplicates local decode drivers.
        segmentation_area = 0.02 * cell_area * (org.wordline_segments - 1)
        # Additional bitline segmentation duplicates sense/precharge strips.
        n_bitline_segments = max(1, org.rows // org.bitline_segment_rows)
        segmentation_area += tech.column_io_area * org.physical_columns * 0.1 * (
            n_bitline_segments - 1
        ) / max(self.interleave, 1)
        return cell_area + io_area + segmentation_area

    # ------------------------------------------------------------------
    # delay
    # ------------------------------------------------------------------
    def access_delay(self) -> float:
        """Relative access (read hit) delay of the bank."""
        tech = self.tech
        org = self.organization
        decoder = tech.gate_delay * math.log2(max(org.rows, 2))
        wordline = tech.wordline_delay_per_cell * org.activated_columns
        bitline = tech.bitline_delay_per_cell * org.bitline_segment_rows
        sense_and_mux = tech.gate_delay * (2 + math.log2(max(self.interleave, 2)))
        return decoder + wordline + bitline + sense_and_mux
