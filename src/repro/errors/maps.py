"""Fault maps: bookkeeping of permanent (hard) faults in an array.

A :class:`FaultMap` records which physical cells of an array are
permanently faulty and how each faulty cell misbehaves (stuck-at-0,
stuck-at-1, or flips the stored value).  The SRAM array model consults it
on every read so hard errors keep re-appearing after rewrites — the
property that distinguishes them from soft errors and that drives the
yield/reliability analysis of Section 5.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["FaultBehavior", "FaultMap"]


class FaultBehavior(enum.Enum):
    """How a permanently faulty cell corrupts reads."""

    STUCK_AT_0 = "stuck_at_0"
    STUCK_AT_1 = "stuck_at_1"
    #: The cell returns the complement of whatever was last written.
    INVERT = "invert"


@dataclass(frozen=True)
class _Fault:
    row: int
    column: int
    behavior: FaultBehavior


class FaultMap:
    """Sparse map of permanently faulty cells for a rows x columns array."""

    def __init__(self, rows: int, columns: int):
        if rows < 1 or columns < 1:
            raise ValueError("fault map dimensions must be positive")
        self._rows = rows
        self._columns = columns
        self._faults: dict[tuple[int, int], FaultBehavior] = {}

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self._rows

    @property
    def columns(self) -> int:
        return self._columns

    @property
    def fault_count(self) -> int:
        """Number of permanently faulty cells."""
        return len(self._faults)

    def __contains__(self, cell: tuple[int, int]) -> bool:
        return cell in self._faults

    def __len__(self) -> int:
        return len(self._faults)

    # ------------------------------------------------------------------
    def add(
        self,
        row: int,
        column: int,
        behavior: FaultBehavior = FaultBehavior.INVERT,
    ) -> None:
        """Mark a cell permanently faulty."""
        self._check_bounds(row, column)
        self._faults[(row, column)] = behavior

    def remove(self, row: int, column: int) -> None:
        """Clear a fault (e.g. after the address is remapped to a spare)."""
        self._faults.pop((row, column), None)

    def clear(self) -> None:
        self._faults.clear()

    def behavior_at(self, row: int, column: int) -> FaultBehavior | None:
        """Behavior of the fault at a cell, or None when the cell is good."""
        return self._faults.get((row, column))

    def faulty_cells(self) -> tuple[tuple[int, int], ...]:
        """All faulty cell coordinates, sorted."""
        return tuple(sorted(self._faults))

    def faults_in_row(self, row: int) -> tuple[int, ...]:
        """Columns of faulty cells in a given physical row."""
        return tuple(sorted(c for (r, c) in self._faults if r == row))

    def faults_in_column(self, column: int) -> tuple[int, ...]:
        """Rows of faulty cells in a given physical column."""
        return tuple(sorted(r for (r, c) in self._faults if c == column))

    # ------------------------------------------------------------------
    def corrupt_row(self, row: int, stored: np.ndarray) -> np.ndarray:
        """Apply the row's faults to the stored bits, returning what a read sees."""
        self._check_row(row)
        if stored.size != self._columns:
            raise ValueError("stored row width does not match the fault map")
        observed = stored.copy()
        for column in self.faults_in_row(row):
            behavior = self._faults[(row, column)]
            if behavior is FaultBehavior.STUCK_AT_0:
                observed[column] = 0
            elif behavior is FaultBehavior.STUCK_AT_1:
                observed[column] = 1
            else:
                observed[column] ^= 1
        return observed

    def as_matrix(self) -> np.ndarray:
        """Dense boolean matrix of faulty cells (True = faulty)."""
        matrix = np.zeros((self._rows, self._columns), dtype=bool)
        for row, column in self._faults:
            matrix[row, column] = True
        return matrix

    # ------------------------------------------------------------------
    def _check_bounds(self, row: int, column: int) -> None:
        self._check_row(row)
        if not 0 <= column < self._columns:
            raise ValueError(f"column {column} out of range [0, {self._columns})")

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._rows:
            raise ValueError(f"row {row} out of range [0, {self._rows})")
