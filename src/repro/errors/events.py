"""Error event models: what can go wrong in an SRAM array.

The paper distinguishes:

* **Soft (transient) errors** — particle strikes, noise.  Most events
  upset a single cell, but the single-event multi-bit upset rate grows
  with scaling; observed footprints range from small clusters to entire
  rows/columns (up to 16-bit corruptions in one dimension already seen in
  real SRAMs).
* **Hard (permanent) errors** — manufacture-time defects (mostly
  single-cell) and in-the-field wear-out, which may take out cells, rows,
  columns, or whole sub-arrays.

An :class:`ErrorEvent` describes a set of (row, column) cell coordinates
to flip (soft) or to mark stuck (hard).  Factories build the canonical
footprints used throughout the evaluation: single-bit upsets, rectangular
clusters, row failures and column failures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "ErrorKind",
    "ErrorEvent",
    "single_bit_upset",
    "cluster_upset",
    "row_failure",
    "column_failure",
]


class ErrorKind(enum.Enum):
    """Persistence class of an error event."""

    #: Transient bit flips; a rewrite of the cell restores correct operation.
    SOFT = "soft"
    #: Permanent faults; the affected cells return corrupted data until the
    #: address is repaired (spares) or the fault is masked by coding.
    HARD = "hard"


@dataclass(frozen=True)
class ErrorEvent:
    """A single error event affecting a set of physical cells.

    Attributes
    ----------
    kind:
        Soft (transient flip) or hard (permanent fault).
    cells:
        Tuple of ``(row, column)`` physical coordinates affected.
    label:
        Human-readable description used in reports ("SBU", "4x4 cluster",
        "row failure", ...).
    """

    kind: ErrorKind
    cells: tuple[tuple[int, int], ...]
    label: str = "error"

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("an error event must affect at least one cell")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of affected cells."""
        return len(self.cells)

    @property
    def rows(self) -> tuple[int, ...]:
        return tuple(sorted({r for r, _ in self.cells}))

    @property
    def columns(self) -> tuple[int, ...]:
        return tuple(sorted({c for _, c in self.cells}))

    @property
    def row_span(self) -> int:
        """Number of distinct rows touched (vertical footprint)."""
        rows = self.rows
        return rows[-1] - rows[0] + 1

    @property
    def column_span(self) -> int:
        """Number of distinct columns touched (horizontal footprint)."""
        cols = self.columns
        return cols[-1] - cols[0] + 1

    def bounding_box(self) -> tuple[int, int, int, int]:
        """Return ``(row_min, col_min, row_max, col_max)``."""
        rows = self.rows
        cols = self.columns
        return rows[0], cols[0], rows[-1], cols[-1]

    def shifted(self, row_offset: int, col_offset: int) -> "ErrorEvent":
        """Return a copy of the event translated by the given offsets."""
        return ErrorEvent(
            kind=self.kind,
            cells=tuple((r + row_offset, c + col_offset) for r, c in self.cells),
            label=self.label,
        )


# ----------------------------------------------------------------------
# canonical footprints
# ----------------------------------------------------------------------

def single_bit_upset(row: int, column: int, kind: ErrorKind = ErrorKind.SOFT) -> ErrorEvent:
    """A single-cell upset at the given coordinates."""
    return ErrorEvent(kind=kind, cells=((row, column),), label="SBU")


def cluster_upset(
    row: int,
    column: int,
    height: int,
    width: int,
    kind: ErrorKind = ErrorKind.SOFT,
) -> ErrorEvent:
    """A dense rectangular multi-bit upset of ``height`` x ``width`` cells.

    ``(row, column)`` is the top-left corner.  This is the footprint the
    paper's coverage claims are phrased in ("clustered errors up to 32x32
    bits").
    """
    if height < 1 or width < 1:
        raise ValueError("cluster dimensions must be at least 1x1")
    cells = tuple(
        (row + dr, column + dc) for dr in range(height) for dc in range(width)
    )
    return ErrorEvent(kind=kind, cells=cells, label=f"{height}x{width} cluster")


def row_failure(
    row: int, n_columns: int, kind: ErrorKind = ErrorKind.HARD
) -> ErrorEvent:
    """Failure of an entire physical row (all ``n_columns`` cells)."""
    if n_columns < 1:
        raise ValueError("a row must have at least one column")
    return ErrorEvent(
        kind=kind,
        cells=tuple((row, c) for c in range(n_columns)),
        label="row failure",
    )


def column_failure(
    column: int, n_rows: int, kind: ErrorKind = ErrorKind.HARD
) -> ErrorEvent:
    """Failure of an entire physical column (all ``n_rows`` cells)."""
    if n_rows < 1:
        raise ValueError("a column must have at least one row")
    return ErrorEvent(
        kind=kind,
        cells=tuple((r, column) for r in range(n_rows)),
        label="column failure",
    )
