"""Error-rate models: soft-error FIT rates and hard-error rates.

The paper's reliability analysis (Section 5.2, Fig. 8) uses two inputs:

* a soft error rate of **1000 FIT/Mb** (failures in 10^9 device-hours per
  megabit), taken from Slayman [43], and
* a manufacture-time hard error rate (HER) expressed as the probability
  that an individual cell is faulty, swept from **0.0005% to 0.005%**
  (5e-6 to 5e-5 per bit).

This module turns those constants into the quantities the models need:
expected soft-error counts over an operating interval, and expected
faulty-cell counts for a given capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SoftErrorRate",
    "HardErrorRate",
    "PAPER_SOFT_ERROR_RATE",
    "PAPER_HARD_ERROR_RATES",
    "HOURS_PER_YEAR",
]

#: Hours in a (non-leap) year, used to convert FIT to per-year rates.
HOURS_PER_YEAR = 24 * 365

#: One megabit, the FIT normalization unit.
_BITS_PER_MEGABIT = 1_000_000


@dataclass(frozen=True)
class SoftErrorRate:
    """Soft error rate expressed in FIT per megabit.

    1 FIT = one failure per 10^9 device-hours.
    """

    fit_per_mbit: float

    def __post_init__(self) -> None:
        if self.fit_per_mbit < 0:
            raise ValueError("FIT rate must be non-negative")

    def events_per_hour(self, capacity_bits: int) -> float:
        """Expected soft-error events per hour for ``capacity_bits`` of SRAM."""
        if capacity_bits < 0:
            raise ValueError("capacity must be non-negative")
        megabits = capacity_bits / _BITS_PER_MEGABIT
        return self.fit_per_mbit * megabits / 1e9

    def events_per_year(self, capacity_bits: int) -> float:
        """Expected soft-error events per year of operation."""
        return self.events_per_hour(capacity_bits) * HOURS_PER_YEAR

    def expected_events(self, capacity_bits: int, years: float) -> float:
        """Expected soft-error events over ``years`` of operation."""
        if years < 0:
            raise ValueError("years must be non-negative")
        return self.events_per_year(capacity_bits) * years


@dataclass(frozen=True)
class HardErrorRate:
    """Per-cell probability of a manufacture-time (or accumulated) hard fault."""

    per_bit_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.per_bit_probability <= 1.0:
            raise ValueError("per-bit probability must be in [0, 1]")

    @classmethod
    def from_percent(cls, percent: float) -> "HardErrorRate":
        """Build from the percentage notation the paper uses (e.g. 0.001%)."""
        return cls(percent / 100.0)

    @property
    def percent(self) -> float:
        return self.per_bit_probability * 100.0

    def expected_faulty_cells(self, capacity_bits: int) -> float:
        """Expected number of faulty cells in ``capacity_bits`` of SRAM."""
        if capacity_bits < 0:
            raise ValueError("capacity must be non-negative")
        return self.per_bit_probability * capacity_bits


#: The soft error rate assumed throughout the paper's Section 5.2.
PAPER_SOFT_ERROR_RATE = SoftErrorRate(fit_per_mbit=1000.0)

#: The three hard error rates swept in Fig. 8(b).
PAPER_HARD_ERROR_RATES = {
    "0.0005%": HardErrorRate.from_percent(0.0005),
    "0.001%": HardErrorRate.from_percent(0.001),
    "0.005%": HardErrorRate.from_percent(0.005),
}
