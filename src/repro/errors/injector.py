"""Deterministic, seeded error injection.

The injector draws error events (footprint shape, size and placement)
from configurable distributions and applies them to anything exposing the
small "injectable" protocol: a ``rows`` x ``columns`` geometry plus a
``flip_cell(row, column)`` method (soft errors) and a
``mark_faulty(row, column)`` method (hard errors).  Both
:class:`repro.array.sram.SramArray` and the 2D-protected array implement
it.

All randomness flows through a ``numpy.random.Generator`` so experiments
are reproducible bit-for-bit from a seed.

The geometry itself — where clusters land, which line a burst starts
on, which footprint a distribution draws — is **not** implemented here:
every sampler delegates to the shared batched generators in
:mod:`repro.scenarios.generators` (with ``size=1`` draws, which consume
the generator stream identically to the scalar draws they replaced, so
seeded histories are preserved).  The vectorized scenario subsystem and
this scalar injector therefore share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.scenarios.generators import (
    bernoulli_masks,
    mostly_single_bit_footprints,
    place_bursts,
    place_clusters,
    sample_footprints,
)

from .events import (
    ErrorEvent,
    ErrorKind,
    cluster_upset,
    column_failure,
    row_failure,
    single_bit_upset,
)

__all__ = ["InjectionTarget", "ErrorInjector", "FootprintDistribution"]


class InjectionTarget(Protocol):
    """Protocol for anything errors can be injected into."""

    @property
    def rows(self) -> int: ...

    @property
    def columns(self) -> int: ...

    def flip_cell(self, row: int, column: int) -> None: ...

    def mark_faulty(self, row: int, column: int) -> None: ...


@dataclass(frozen=True)
class FootprintDistribution:
    """Distribution over multi-bit error footprints.

    Each entry maps a ``(height, width)`` footprint to a relative weight.
    ``(1, 1)`` is a single-bit upset.  Entries with height equal to the
    target's row count model column failures; width equal to the column
    count models row failures.
    """

    weights: dict[tuple[int, int], float]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("footprint distribution must not be empty")
        for (h, w), weight in self.weights.items():
            if h < 1 or w < 1:
                raise ValueError(f"invalid footprint {(h, w)}")
            if weight < 0:
                raise ValueError("weights must be non-negative")
        if sum(self.weights.values()) <= 0:
            raise ValueError("at least one footprint needs positive weight")

    @classmethod
    def mostly_single_bit(cls, multi_bit_fraction: float = 0.1) -> "FootprintDistribution":
        """A distribution dominated by SBUs with a tail of small clusters.

        Mirrors the paper's observation that today most events are
        single-bit but a growing fraction are multi-bit.  The weight
        table is the canonical one from
        :func:`repro.scenarios.generators.mostly_single_bit_footprints`.
        """
        return cls(
            weights=dict(mostly_single_bit_footprints(multi_bit_fraction))
        )

    def sample(self, rng: np.random.Generator) -> tuple[int, int]:
        """Draw one footprint ``(height, width)``."""
        footprints = tuple(self.weights.items())
        heights, widths = sample_footprints(rng, footprints, count=1)
        return int(heights[0]), int(widths[0])


class ErrorInjector:
    """Applies randomly placed error events to an injection target."""

    def __init__(self, target: InjectionTarget, seed: int | None = None):
        self._target = target
        self._rng = np.random.default_rng(seed)
        self._history: list[ErrorEvent] = []

    # ------------------------------------------------------------------
    @property
    def history(self) -> tuple[ErrorEvent, ...]:
        """All events injected so far, in order."""
        return tuple(self._history)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    # ------------------------------------------------------------------
    def apply(self, event: ErrorEvent) -> ErrorEvent:
        """Apply a fully specified event to the target."""
        for row, column in event.cells:
            if not (0 <= row < self._target.rows and 0 <= column < self._target.columns):
                raise ValueError(
                    f"cell {(row, column)} outside target "
                    f"{self._target.rows}x{self._target.columns}"
                )
            if event.kind is ErrorKind.SOFT:
                self._target.flip_cell(row, column)
            else:
                self._target.mark_faulty(row, column)
        self._history.append(event)
        return event

    # ------------------------------------------------------------------
    def inject_single_bit(self, kind: ErrorKind = ErrorKind.SOFT) -> ErrorEvent:
        """Inject one uniformly placed single-bit upset."""
        row = int(self._rng.integers(0, self._target.rows))
        column = int(self._rng.integers(0, self._target.columns))
        return self.apply(single_bit_upset(row, column, kind=kind))

    def inject_cluster(
        self, height: int, width: int, kind: ErrorKind = ErrorKind.SOFT
    ) -> ErrorEvent:
        """Inject a ``height`` x ``width`` cluster at a uniform position."""
        if height > self._target.rows or width > self._target.columns:
            raise ValueError("cluster does not fit in the target")
        r0, c0 = place_clusters(
            self._rng,
            np.array([height], dtype=np.int64),
            np.array([width], dtype=np.int64),
            self._target.rows,
            self._target.columns,
        )
        return self.apply(
            cluster_upset(int(r0[0]), int(c0[0]), height, width, kind=kind)
        )

    def inject_row_failure(self, kind: ErrorKind = ErrorKind.HARD) -> ErrorEvent:
        """Fail one uniformly chosen physical row."""
        starts = place_bursts(
            self._rng, np.array([1], dtype=np.int64), self._target.rows
        )
        return self.apply(
            row_failure(int(starts[0]), self._target.columns, kind=kind)
        )

    def inject_column_failure(self, kind: ErrorKind = ErrorKind.HARD) -> ErrorEvent:
        """Fail one uniformly chosen physical column."""
        starts = place_bursts(
            self._rng, np.array([1], dtype=np.int64), self._target.columns
        )
        return self.apply(
            column_failure(int(starts[0]), self._target.rows, kind=kind)
        )

    def inject_from_distribution(
        self,
        distribution: FootprintDistribution,
        count: int = 1,
        kind: ErrorKind = ErrorKind.SOFT,
    ) -> list[ErrorEvent]:
        """Inject ``count`` events with footprints drawn from ``distribution``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        events = []
        for _ in range(count):
            height, width = distribution.sample(self._rng)
            height = min(height, self._target.rows)
            width = min(width, self._target.columns)
            events.append(self.inject_cluster(height, width, kind=kind))
        return events

    def inject_random_hard_faults(self, probability: float) -> list[ErrorEvent]:
        """Mark each cell faulty independently with the given probability.

        This is the manufacture-time defect model used by the yield
        analysis: faults land uniformly at random across the array.
        """
        mask = bernoulli_masks(
            self._rng, 1, self._target.rows, self._target.columns, probability
        )[0].astype(bool)
        events = []
        for row, column in zip(*np.nonzero(mask)):
            events.append(
                self.apply(single_bit_upset(int(row), int(column), kind=ErrorKind.HARD))
            )
        return events
