"""Error models: events, rates, fault maps and deterministic injection."""

from .events import (
    ErrorEvent,
    ErrorKind,
    cluster_upset,
    column_failure,
    row_failure,
    single_bit_upset,
)
from .injector import ErrorInjector, FootprintDistribution, InjectionTarget
from .maps import FaultBehavior, FaultMap
from .rates import (
    HOURS_PER_YEAR,
    PAPER_HARD_ERROR_RATES,
    PAPER_SOFT_ERROR_RATE,
    HardErrorRate,
    SoftErrorRate,
)

__all__ = [
    "ErrorEvent",
    "ErrorKind",
    "cluster_upset",
    "column_failure",
    "row_failure",
    "single_bit_upset",
    "ErrorInjector",
    "FootprintDistribution",
    "InjectionTarget",
    "FaultBehavior",
    "FaultMap",
    "HOURS_PER_YEAR",
    "PAPER_HARD_ERROR_RATES",
    "PAPER_SOFT_ERROR_RATE",
    "HardErrorRate",
    "SoftErrorRate",
]
