"""Result records produced by the CMP performance model."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheAccessBreakdown", "SimulationResult", "PerformanceComparison"]


@dataclass
class CacheAccessBreakdown:
    """Cache accesses per 100 cycles, split the way Figure 6 splits them.

    All values are aggregate over the traffic the figure plots (all cores'
    L1 data caches, or the whole shared L2).
    """

    inst_reads: float = 0.0
    data_reads: float = 0.0
    writes: float = 0.0
    fill_evict: float = 0.0
    extra_2d_reads: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.inst_reads
            + self.data_reads
            + self.writes
            + self.fill_evict
            + self.extra_2d_reads
        )

    @property
    def baseline_total(self) -> float:
        """Accesses excluding the extra reads added by 2D coding."""
        return self.inst_reads + self.data_reads + self.writes + self.fill_evict

    @property
    def extra_read_fraction(self) -> float:
        """Extra 2D reads as a fraction of the baseline traffic (~20% in the paper)."""
        base = self.baseline_total
        return self.extra_2d_reads / base if base else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "Read: Inst": self.inst_reads,
            "Read: Data": self.data_reads,
            "Write": self.writes,
            "Fill/Evict": self.fill_evict,
            "Extra Read for 2D Coding": self.extra_2d_reads,
        }


@dataclass
class SimulationResult:
    """Outcome of simulating one (CMP, workload, protection) combination."""

    cmp_name: str
    workload: str
    protection_label: str
    cycles: int
    aggregate_ipc: float
    per_core_ipc: list[float] = field(default_factory=list)
    l1_breakdown: CacheAccessBreakdown = field(default_factory=CacheAccessBreakdown)
    l2_breakdown: CacheAccessBreakdown = field(default_factory=CacheAccessBreakdown)
    l1_port_utilization: float = 0.0
    l2_bank_utilization: float = 0.0
    port_steals: int = 0
    forced_steals: int = 0


@dataclass
class PerformanceComparison:
    """Protected-vs-baseline comparison for one workload (a Fig. 5 bar)."""

    cmp_name: str
    workload: str
    protection_label: str
    baseline_ipc: float
    protected_ipc: float

    @property
    def ipc_loss_percent(self) -> float:
        """Performance loss in % IPC (the Fig. 5 y-axis)."""
        if self.baseline_ipc <= 0:
            return 0.0
        return max(0.0, (1.0 - self.protected_ipc / self.baseline_ipc) * 100.0)
