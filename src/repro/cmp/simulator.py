"""Trace-driven, cycle-granular CMP contention model.

This model reproduces the performance experiment of Section 5.1 (Fig. 5
and Fig. 6): how much IPC is lost when L1 data caches and/or the shared L2
are protected with 2D coding, i.e. when every write-type access issues an
additional read to update the vertical parity.

This scalar, per-cycle implementation is the **reference oracle** for
the vectorized :mod:`repro.perf` subsystem that now backs the
``fig5.performance`` / ``fig6.access_breakdown`` experiments:
``repro.perf.simulate_matched`` replays this simulator's exact RNG
stream through closed-form booking kernels and is property-tested
bit-exact against it (``tests/test_perf_kernel.py``).

Modelling approach (and why it is adequate — see ``DESIGN.md`` at the
repository root, which also documents the vectorized closed forms):

* Each core generates L1-D reads/writes/fill-evictions and L2
  reads/writes/fill-evictions per cycle following its workload profile,
  with a bursty two-phase arrival process (out-of-order cores cluster
  memory accesses; that burstiness is what makes L1 port contention
  visible, exactly as the paper argues in Section 4).
* L1 ports and L2 banks are explicit resources with cycle booking.
  Demand reads that find their port/bank busy are delayed; writes,
  fills and vertical-parity reads only occupy the resources (they are
  buffered off the critical path), which mirrors the paper's observation
  that 2D coding hurts only *indirectly*, through occupancy.
* 2D protection converts every write-type access into read-before-write:
  one extra read booked on the same resource.  With port stealing the
  extra L1 reads wait for idle port cycles (bounded by the store queue)
  instead of competing with demand accesses.
* Queueing delay on demand reads is converted into lost commit slots
  through the workload's memory sensitivity; hardware multithreading on
  the lean CMP hides a proportional share of it.

IPC losses are always reported relative to a baseline simulation of the
same seed, so common-mode modelling error cancels — the same reason the
paper uses matched-pair measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.profiles import WorkloadProfile

from .config import CmpConfig, CoreType, ProtectionConfig
from .resources import BankScheduler, PortScheduler, StealQueue
from .stats import CacheAccessBreakdown, PerformanceComparison, SimulationResult

__all__ = ["CmpSimulator", "simulate", "compare_protection"]


@dataclass
class _CoreState:
    """Per-core mutable simulation state."""

    ports: PortScheduler
    steal_queue: StealQueue
    stall_cycles: float = 0.0
    l1_reads: int = 0
    l1_writes: int = 0
    l1_fill_evict: int = 0
    l1_extra_reads: int = 0


class CmpSimulator:
    """Simulates one (CMP, workload, protection) combination."""

    def __init__(
        self,
        cmp_config: CmpConfig,
        profile: WorkloadProfile,
        protection: ProtectionConfig,
        seed: int = 0,
    ):
        self._cmp = cmp_config
        self._profile = profile
        self._protection = protection
        self._seed = seed

    # ------------------------------------------------------------------
    def run(self, n_cycles: int = 20_000) -> SimulationResult:
        """Run the contention model for ``n_cycles`` processor cycles."""
        if n_cycles < 100:
            raise ValueError("n_cycles must be at least 100")
        rng = np.random.default_rng(self._seed)
        cmp_cfg = self._cmp
        profile = self._profile
        protection = self._protection
        n_cores = cmp_cfg.n_cores

        cores = [
            _CoreState(
                ports=PortScheduler(cmp_cfg.l1d.n_ports),
                steal_queue=StealQueue(capacity=cmp_cfg.core.store_queue_entries),
            )
            for _ in range(n_cores)
        ]
        l2_banks = BankScheduler(cmp_cfg.l2.n_banks, cmp_cfg.l2.bank_busy_cycles)

        # Pre-draw per-cycle event counts.  The burst process modulates the
        # mean rate: burst phases multiply it by `burstiness`, quiet phases
        # scale it down so the long-run mean matches the profile.
        burst_factor = self._burst_factors(rng, n_cycles, n_cores)
        l1_scale = cmp_cfg.core.l1_traffic_scale
        l2_scale = cmp_cfg.core.l2_traffic_scale
        l1_read_events = self._draw(rng, profile.l1d_reads * l1_scale, burst_factor)
        l1_write_events = self._draw(rng, profile.l1d_writes * l1_scale, burst_factor)
        l1_fill_events = self._draw(rng, profile.l1d_fill_evict * l1_scale, burst_factor)
        l1_inst_events = self._draw(rng, profile.l1i_reads * l1_scale, burst_factor)
        l2_read_events = self._draw(rng, profile.l2_reads * l2_scale, burst_factor)
        l2_write_events = self._draw(rng, profile.l2_writes * l2_scale, burst_factor)
        l2_fill_events = self._draw(rng, profile.l2_fill_evict * l2_scale, burst_factor)

        sensitivity = profile.memory_sensitivity
        smt_hiding = (
            cmp_cfg.core.hardware_threads
            if cmp_cfg.core.core_type is CoreType.IN_ORDER_SMT
            else 1
        )

        l2_counts = {"reads": 0, "writes": 0, "fill_evict": 0, "extra": 0, "inst": 0}
        l1_inst_total = 0

        for cycle in range(n_cycles):
            for core_index, core in enumerate(cores):
                # ----- L1 data cache -----
                reads = int(l1_read_events[core_index, cycle])
                writes = int(l1_write_events[core_index, cycle])
                fills = int(l1_fill_events[core_index, cycle])
                core.l1_reads += reads
                core.l1_writes += writes
                core.l1_fill_evict += fills
                l1_inst_total += int(l1_inst_events[core_index, cycle])

                delay = 0
                for _ in range(reads):
                    delay += core.ports.schedule(cycle)
                for _ in range(writes + fills):
                    core.ports.schedule(cycle)

                if protection.protect_l1:
                    extra = writes + fills
                    core.l1_extra_reads += extra
                    if protection.l1_port_stealing:
                        for _ in range(extra):
                            if not core.steal_queue.push(cycle):
                                core.ports.schedule(cycle)
                    else:
                        for _ in range(extra):
                            core.ports.schedule(cycle)

                if protection.l1_port_stealing and core.steal_queue.pending:
                    # Conservative stealing: on a multi-ported cache one port
                    # is left available for demand accesses that may issue
                    # later in the same cycle, so only truly spare slots are
                    # stolen.  This is what keeps port stealing from
                    # removing *all* of the contention.
                    idle = core.ports.idle_slots(cycle)
                    usable = idle - 1 if core.ports.n_ports > 1 else idle
                    if usable > 0:
                        core.steal_queue.drain(cycle, usable)
                    for _ in range(core.steal_queue.take_expired(cycle)):
                        # Deadline reached: the read competes with demand
                        # accesses after all.
                        core.ports.schedule(cycle)

                # ----- shared L2 -----
                l2_reads = int(l2_read_events[core_index, cycle])
                l2_writes = int(l2_write_events[core_index, cycle])
                l2_fills = int(l2_fill_events[core_index, cycle])
                l2_counts["reads"] += l2_reads
                l2_counts["writes"] += l2_writes
                l2_counts["fill_evict"] += l2_fills

                l2_delay = 0
                for _ in range(l2_reads):
                    bank = int(rng.integers(0, l2_banks.n_banks))
                    l2_delay += l2_banks.schedule(cycle, bank)
                for _ in range(l2_writes + l2_fills):
                    bank = int(rng.integers(0, l2_banks.n_banks))
                    l2_banks.schedule(cycle, bank)
                if protection.protect_l2:
                    extra = l2_writes + l2_fills
                    l2_counts["extra"] += extra
                    for _ in range(extra):
                        bank = int(rng.integers(0, l2_banks.n_banks))
                        l2_banks.schedule(cycle, bank)

                # Short L1 port delays are largely hidden by the other
                # hardware threads of an SMT core; L2 bank queueing is a
                # shared-bandwidth bottleneck that multithreading cannot
                # hide (all threads queue behind the same banks), which is
                # why the lean CMP's loss is dominated by the L2 (Fig. 5b).
                core.stall_cycles += sensitivity * (delay / smt_hiding + l2_delay)

        per_core_ipc = []
        for core in cores:
            stall_fraction = min(core.stall_cycles / n_cycles, 1.0)
            per_core_ipc.append(profile.base_ipc * (1.0 - stall_fraction))

        scale = 100.0 / n_cycles
        l1_breakdown = CacheAccessBreakdown(
            inst_reads=0.0,
            data_reads=sum(c.l1_reads for c in cores) * scale,
            writes=sum(c.l1_writes for c in cores) * scale,
            fill_evict=sum(c.l1_fill_evict for c in cores) * scale,
            extra_2d_reads=sum(c.l1_extra_reads for c in cores) * scale,
        )
        l2_breakdown = CacheAccessBreakdown(
            inst_reads=0.0,
            data_reads=l2_counts["reads"] * scale,
            writes=l2_counts["writes"] * scale,
            fill_evict=l2_counts["fill_evict"] * scale,
            extra_2d_reads=l2_counts["extra"] * scale,
        )

        return SimulationResult(
            cmp_name=self._cmp.name,
            workload=profile.name,
            protection_label=protection.label,
            cycles=n_cycles,
            aggregate_ipc=float(sum(per_core_ipc)),
            per_core_ipc=per_core_ipc,
            l1_breakdown=l1_breakdown,
            l2_breakdown=l2_breakdown,
            l1_port_utilization=float(
                np.mean([c.ports.utilization(n_cycles) for c in cores])
            ),
            l2_bank_utilization=l2_banks.utilization(n_cycles),
            port_steals=sum(c.steal_queue.stolen_issues for c in cores),
            forced_steals=sum(c.steal_queue.forced_issues for c in cores),
        )

    # ------------------------------------------------------------------
    def _burst_factors(
        self, rng: np.random.Generator, n_cycles: int, n_cores: int
    ) -> np.ndarray:
        """Per-core, per-cycle rate multipliers implementing bursty phases."""
        core_cfg = self._cmp.core
        burst_fraction = core_cfg.burst_fraction
        burstiness = core_cfg.burstiness
        quiet_factor = (1.0 - burst_fraction * burstiness) / (1.0 - burst_fraction)
        quiet_factor = max(quiet_factor, 0.0)

        # Persistent phases: a two-state Markov chain with ~32-cycle bursts.
        factors = np.empty((n_cores, n_cycles), dtype=float)
        mean_phase = 32
        p_enter = burst_fraction / mean_phase / max(1.0 - burst_fraction, 1e-9)
        p_exit = 1.0 / mean_phase
        for core in range(n_cores):
            in_burst = rng.random() < burst_fraction
            draws = rng.random(n_cycles)
            for cycle in range(n_cycles):
                factors[core, cycle] = burstiness if in_burst else quiet_factor
                if in_burst:
                    in_burst = draws[cycle] >= p_exit
                else:
                    in_burst = draws[cycle] < p_enter
        return factors

    def _draw(
        self, rng: np.random.Generator, rate_per_100: float, burst_factor: np.ndarray
    ) -> np.ndarray:
        """Per-core, per-cycle Poisson event counts at the modulated rate."""
        lam = np.clip(rate_per_100 / 100.0 * burst_factor, 0.0, None)
        return rng.poisson(lam)


def simulate(
    cmp_config: CmpConfig,
    profile: WorkloadProfile,
    protection: ProtectionConfig,
    n_cycles: int = 20_000,
    seed: int = 0,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`CmpSimulator` and run it."""
    return CmpSimulator(cmp_config, profile, protection, seed=seed).run(n_cycles)


def compare_protection(
    cmp_config: CmpConfig,
    profile: WorkloadProfile,
    protection: ProtectionConfig,
    n_cycles: int = 20_000,
    seed: int = 0,
) -> PerformanceComparison:
    """Matched-pair baseline-vs-protected comparison (one Fig. 5 bar)."""
    baseline = simulate(
        cmp_config, profile, ProtectionConfig(label="baseline"), n_cycles, seed
    )
    protected = simulate(cmp_config, profile, protection, n_cycles, seed)
    return PerformanceComparison(
        cmp_name=cmp_config.name,
        workload=profile.name,
        protection_label=protection.label,
        baseline_ipc=baseline.aggregate_ipc,
        protected_ipc=protected.aggregate_ipc,
    )
