"""CMP system configurations (Table 1 of the paper).

Two baseline systems are modelled:

* the **fat CMP** — four 4-wide out-of-order cores, dual-ported 64kB L1
  data caches, a 16MB shared L2; balances single-thread performance and
  throughput, and
* the **lean CMP** — eight 2-wide in-order cores with 4 hardware threads
  each, single-ported 64kB L1 data caches, a 4MB shared L2; targets
  throughput only.

The protection configuration (which caches carry 2D coding and whether
the L1 uses port stealing) is orthogonal and captured by
:class:`ProtectionConfig`, matching the four bars of Figure 5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

__all__ = [
    "CoreType",
    "CoreConfig",
    "CacheTimingConfig",
    "CmpConfig",
    "ProtectionConfig",
    "fat_cmp_config",
    "lean_cmp_config",
    "PROTECTION_SCENARIOS",
]


class CoreType(enum.Enum):
    """Microarchitectural style of the cores."""

    OUT_OF_ORDER = "out_of_order"
    IN_ORDER_SMT = "in_order_smt"


@dataclass(frozen=True)
class CoreConfig:
    """Per-core parameters relevant to the contention model."""

    core_type: CoreType
    issue_width: int
    hardware_threads: int = 1
    store_queue_entries: int = 64
    #: Multiplier applied to access rates during bursty phases; OoO cores
    #: cluster their memory accesses, which is what makes L1 port
    #: contention visible (Section 4: "bursty access patterns").
    burstiness: float = 3.0
    #: Fraction of cycles spent in the bursty phase.
    burst_fraction: float = 0.25
    #: Scale applied to the workload profile's per-core L1 access rates —
    #: a 4-wide out-of-order core generates roughly twice the per-core L1
    #: traffic of a 2-wide in-order core (Section 5.1: "the fat CMP
    #: consumes higher L1 cache bandwidth per core").
    l1_traffic_scale: float = 1.0
    #: Scale applied to the per-core L2 access rates.
    l2_traffic_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.issue_width < 1 or self.hardware_threads < 1:
            raise ValueError("core width/threads must be positive")
        if self.store_queue_entries < 1:
            raise ValueError("store queue must have at least one entry")
        if self.burstiness < 1.0:
            raise ValueError("burstiness must be >= 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.l1_traffic_scale <= 0 or self.l2_traffic_scale <= 0:
            raise ValueError("traffic scales must be positive")


@dataclass(frozen=True)
class CacheTimingConfig:
    """Timing/structural parameters of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    n_ports: int
    n_banks: int
    hit_latency: int
    #: Cycles a bank stays busy per access (bank occupancy).
    bank_busy_cycles: int = 1

    def __post_init__(self) -> None:
        if min(self.size_bytes, self.associativity, self.line_bytes) <= 0:
            raise ValueError("cache geometry must be positive")
        if self.n_ports < 1 or self.n_banks < 1:
            raise ValueError("ports/banks must be positive")
        if self.hit_latency < 1 or self.bank_busy_cycles < 1:
            raise ValueError("latencies must be positive")


@dataclass(frozen=True)
class CmpConfig:
    """A complete CMP system description."""

    name: str
    n_cores: int
    core: CoreConfig
    l1d: CacheTimingConfig
    l2: CacheTimingConfig
    memory_latency: int = 240  # 60ns at 4GHz

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("n_cores must be positive")
        if self.memory_latency < 1:
            raise ValueError("memory latency must be positive")


@dataclass(frozen=True)
class ProtectionConfig:
    """Which caches carry 2D coding and how the L1 handles read-before-write.

    The four evaluated combinations of Fig. 5 are provided in
    :data:`PROTECTION_SCENARIOS`.
    """

    protect_l1: bool = False
    protect_l2: bool = False
    l1_port_stealing: bool = False
    label: str = "baseline"

    @property
    def any_protection(self) -> bool:
        return self.protect_l1 or self.protect_l2


#: The protection scenarios plotted as the four bars of Fig. 5, plus the
#: unprotected baseline used as the IPC reference.
PROTECTION_SCENARIOS: dict[str, ProtectionConfig] = {
    "baseline": ProtectionConfig(label="baseline"),
    "l1": ProtectionConfig(protect_l1=True, label="L1 D-cache"),
    "l1_ps": ProtectionConfig(
        protect_l1=True, l1_port_stealing=True, label="L1 D-cache with port stealing"
    ),
    "l2": ProtectionConfig(protect_l2=True, label="L2 cache"),
    "l1_ps_l2": ProtectionConfig(
        protect_l1=True,
        protect_l2=True,
        l1_port_stealing=True,
        label="L1 D-cache with port stealing + L2 cache",
    ),
}


def fat_cmp_config() -> CmpConfig:
    """The paper's "fat" CMP: 4 out-of-order cores, 2-port L1D, 16MB L2."""
    return CmpConfig(
        name="fat",
        n_cores=4,
        core=CoreConfig(
            core_type=CoreType.OUT_OF_ORDER,
            issue_width=4,
            hardware_threads=1,
            store_queue_entries=64,
            burstiness=4.0,
            burst_fraction=0.2,
            l1_traffic_scale=1.0,
            l2_traffic_scale=1.0,
        ),
        l1d=CacheTimingConfig(
            name="L1D",
            size_bytes=64 * 1024,
            associativity=2,
            line_bytes=64,
            n_ports=2,
            n_banks=1,
            hit_latency=2,
        ),
        l2=CacheTimingConfig(
            name="L2",
            size_bytes=16 * 1024 * 1024,
            associativity=8,
            line_bytes=64,
            n_ports=1,
            n_banks=16,
            hit_latency=16,
            bank_busy_cycles=4,
        ),
    )


def lean_cmp_config() -> CmpConfig:
    """The paper's "lean" CMP: 8 in-order 4-thread cores, 1-port L1D, 4MB L2."""
    return CmpConfig(
        name="lean",
        n_cores=8,
        core=CoreConfig(
            core_type=CoreType.IN_ORDER_SMT,
            issue_width=2,
            hardware_threads=4,
            store_queue_entries=64,
            burstiness=1.5,
            burst_fraction=0.25,
            l1_traffic_scale=0.55,
            l2_traffic_scale=0.8,
        ),
        l1d=CacheTimingConfig(
            name="L1D",
            size_bytes=64 * 1024,
            associativity=2,
            line_bytes=64,
            n_ports=1,
            n_banks=1,
            hit_latency=2,
        ),
        l2=CacheTimingConfig(
            name="L2",
            size_bytes=4 * 1024 * 1024,
            associativity=16,
            line_bytes=64,
            n_ports=1,
            n_banks=8,
            hit_latency=12,
            bank_busy_cycles=4,
        ),
    )
