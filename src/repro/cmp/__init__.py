"""CMP performance models: the "fat" and "lean" systems of Table 1."""

from .config import (
    CacheTimingConfig,
    CmpConfig,
    CoreConfig,
    CoreType,
    PROTECTION_SCENARIOS,
    ProtectionConfig,
    fat_cmp_config,
    lean_cmp_config,
)
from .resources import BankScheduler, PortScheduler, StealQueue
from .simulator import CmpSimulator, compare_protection, simulate
from .stats import CacheAccessBreakdown, PerformanceComparison, SimulationResult

__all__ = [
    "CacheTimingConfig",
    "CmpConfig",
    "CoreConfig",
    "CoreType",
    "PROTECTION_SCENARIOS",
    "ProtectionConfig",
    "fat_cmp_config",
    "lean_cmp_config",
    "BankScheduler",
    "PortScheduler",
    "StealQueue",
    "CmpSimulator",
    "compare_protection",
    "simulate",
    "CacheAccessBreakdown",
    "PerformanceComparison",
    "SimulationResult",
]
