"""Contention resources: cache ports and banks with cycle-granular booking.

The performance effect the paper measures is occupancy: 2D coding turns
every write into a read-before-write, so the extra reads occupy L1 ports
and L2 banks and delay demand accesses behind them.  These small
schedulers book accesses onto ports/banks and report the queueing delay
each access experienced, which the core model turns into lost IPC.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DEFAULT_STEAL_DEADLINE", "PortScheduler", "BankScheduler", "StealQueue"]

#: Cycles a deferred read-before-write read may wait for an idle port
#: slot before its store retires and it must issue as a regular,
#: contending access.  Shared with the vectorized kernel
#: (:mod:`repro.perf.kernel`), which must match this exactly.
DEFAULT_STEAL_DEADLINE = 16


class PortScheduler:
    """N identical single-cycle ports (an L1 data cache's access ports).

    Accesses are booked onto the earliest port slot at or after their
    arrival cycle; the difference is the queueing delay.
    """

    def __init__(self, n_ports: int):
        if n_ports < 1:
            raise ValueError("n_ports must be positive")
        self._next_free = [0] * n_ports
        self.busy_slots = 0

    @property
    def n_ports(self) -> int:
        return len(self._next_free)

    def schedule(self, cycle: int) -> int:
        """Book one access arriving at ``cycle``; returns queueing delay."""
        port = min(range(len(self._next_free)), key=lambda i: self._next_free[i])
        start = max(cycle, self._next_free[port])
        self._next_free[port] = start + 1
        self.busy_slots += 1
        return start - cycle

    def idle_slots(self, cycle: int) -> int:
        """Number of ports free at ``cycle`` (available for port stealing)."""
        return sum(1 for free in self._next_free if free <= cycle)

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of port-cycles that were occupied."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.busy_slots / (elapsed_cycles * len(self._next_free))


class BankScheduler:
    """Independently busy cache banks (the shared L2's bank structure)."""

    def __init__(self, n_banks: int, busy_cycles: int):
        if n_banks < 1 or busy_cycles < 1:
            raise ValueError("banks and busy cycles must be positive")
        self._next_free = [0] * n_banks
        self._busy_cycles = busy_cycles
        self.busy_slots = 0

    @property
    def n_banks(self) -> int:
        return len(self._next_free)

    def schedule(self, cycle: int, bank: int) -> int:
        """Book one access to ``bank`` arriving at ``cycle``; returns delay."""
        if not 0 <= bank < len(self._next_free):
            raise ValueError(f"bank {bank} out of range")
        start = max(cycle, self._next_free[bank])
        self._next_free[bank] = start + self._busy_cycles
        self.busy_slots += self._busy_cycles
        return start - cycle

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return self.busy_slots / (elapsed_cycles * len(self._next_free))


class StealQueue:
    """Deferred read-before-write reads awaiting idle L1 port cycles.

    Port stealing (after Lepak & Lipasti's "silent stores" scheduling, as
    adapted by the paper) issues the read half of a read-before-write in an
    idle port cycle instead of competing with demand accesses.  Two limits
    make it imperfect, as in the paper (it removes ~72%/~34% of the port
    contention for commercial/scientific workloads, not all of it):

    * the queue is bounded by the store-queue size, and
    * each deferred read carries a deadline — the store it belongs to must
      retire — after which it is issued as a regular, contending access.
    """

    def __init__(self, capacity: int, deadline: int = DEFAULT_STEAL_DEADLINE):
        if capacity < 1 or deadline < 1:
            raise ValueError("capacity and deadline must be positive")
        self.capacity = capacity
        self.deadline = deadline
        self._due: list[int] = []
        self.stolen_issues = 0
        self.forced_issues = 0

    @property
    def pending(self) -> int:
        return len(self._due)

    def push(self, cycle: int) -> bool:
        """Add one deferred read created at ``cycle``.  Returns False when
        the queue overflows (the caller must issue a contending read)."""
        if len(self._due) >= self.capacity:
            self.forced_issues += 1
            return False
        self._due.append(cycle + self.deadline)
        return True

    def drain(self, cycle: int, idle_slots: int) -> int:
        """Issue deferred reads into idle port cycles (oldest first)."""
        issued = min(idle_slots, len(self._due))
        if issued:
            del self._due[:issued]
            self.stolen_issues += issued
        return issued

    def take_expired(self, cycle: int) -> int:
        """Remove and count deferred reads whose deadline has passed; the
        caller must issue them as regular contending accesses."""
        expired = 0
        while self._due and self._due[0] <= cycle:
            self._due.pop(0)
            expired += 1
        self.forced_issues += expired
        return expired
