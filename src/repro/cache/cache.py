"""Functional set-associative cache model.

This is the behavioural cache substrate: addresses, tags, sets, LRU
replacement, write-back or write-through policies, and hit/miss/eviction
statistics.  It stores actual block data (as byte arrays) so it can be
backed by 2D-protected SRAM banks in
:mod:`repro.cache.controller` and exercised end-to-end with error
injection.

Timing/contention (ports, banks, MSHRs) is handled separately by the CMP
performance model in :mod:`repro.cmp`; this class is purely functional.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .block import BlockState, CacheBlock, CacheSet

__all__ = ["WritePolicy", "CacheConfig", "AccessResult", "SetAssociativeCache", "CacheStats"]


class WritePolicy(enum.Enum):
    """Cache write policy."""

    WRITE_BACK = "write_back"
    WRITE_THROUGH = "write_through"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level.

    Sizes are in bytes.  The paper's configurations (Table 1) are provided
    as constructors in :mod:`repro.cmp.config`.
    """

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    n_banks: int = 1
    n_ports: int = 1
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry parameters must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError("cache size must divide evenly into sets")
        if self.n_banks < 1 or self.n_ports < 1:
            raise ValueError("banks and ports must be positive")
        if self.hit_latency < 1:
            raise ValueError("hit latency must be at least one cycle")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def n_lines(self) -> int:
        return self.n_sets * self.associativity

    def set_index(self, address: int) -> int:
        return (address // self.line_bytes) % self.n_sets

    def tag(self, address: int) -> int:
        return address // (self.line_bytes * self.n_sets)

    def block_address(self, address: int) -> int:
        return (address // self.line_bytes) * self.line_bytes

    def bank_index(self, address: int) -> int:
        """Bank an address maps to (line-interleaved banking)."""
        return (address // self.line_bytes) % self.n_banks


@dataclass
class CacheStats:
    """Hit/miss and traffic counters for one cache."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    write_throughs: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: Block address of any valid line evicted by this access (dirty or not).
    victim_address: int | None = None
    #: Dirty line written back to the next level because of this access.
    writeback_address: int | None = None
    #: Line fetched from the next level because of this access.
    fill_address: int | None = None
    #: Data returned (reads) or None.
    data: np.ndarray | None = None
    #: Payload of the dirty line named by ``writeback_address``; filled in
    #: by controllers that own the authoritative (protected) copy.
    evicted_data: np.ndarray | None = None


class SetAssociativeCache:
    """A functional set-associative cache with LRU replacement.

    Parameters
    ----------
    config:
        Cache geometry and policy.
    store_data:
        When True, block data (numpy byte arrays of ``line_bytes``) is kept
        and returned; when False the cache tracks only tags/state, which is
        enough for trace-driven studies and much faster.
    """

    def __init__(self, config: CacheConfig, store_data: bool = False):
        self._config = config
        self._store_data = store_data
        self._sets = [CacheSet(config.associativity) for _ in range(config.n_sets)]
        self._stamp = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def config(self) -> CacheConfig:
        return self._config

    @property
    def store_data(self) -> bool:
        return self._store_data

    # ------------------------------------------------------------------
    def lookup(self, address: int) -> CacheBlock | None:
        """Probe the cache without updating LRU or statistics."""
        cache_set = self._sets[self._config.set_index(address)]
        found = cache_set.find(self._config.tag(address))
        return found[1] if found else None

    def contains(self, address: int) -> bool:
        return self.lookup(address) is not None

    # ------------------------------------------------------------------
    def read(self, address: int) -> AccessResult:
        """Read access (load or instruction fetch)."""
        return self._access(address, is_write=False, data=None)

    def write(self, address: int, data: np.ndarray | None = None) -> AccessResult:
        """Write access (store or write-back arriving from an upper level)."""
        return self._access(address, is_write=True, data=data)

    def fill(self, address: int, data: np.ndarray | None = None, dirty: bool = False) -> AccessResult:
        """Install a line fetched from the next level (miss fill)."""
        set_index = self._config.set_index(address)
        cache_set = self._sets[set_index]
        tag = self._config.tag(address)
        self._stamp += 1

        found = cache_set.find(tag)
        if found is not None:
            way, block = found
        else:
            way = cache_set.victim_way()
            block = cache_set.ways[way]
        victim, writeback = self._evict_if_needed(set_index, block)
        block.tag = tag
        block.state = BlockState.MODIFIED if dirty else BlockState.EXCLUSIVE
        block.data = self._coerce_data(data)
        cache_set.touch(way, self._stamp)
        self.stats.fills += 1
        return AccessResult(
            hit=False,
            victim_address=victim,
            writeback_address=writeback,
            fill_address=self._config.block_address(address),
        )

    def invalidate(self, address: int) -> bool:
        """Invalidate a line if present; returns True when a line was dropped."""
        cache_set = self._sets[self._config.set_index(address)]
        found = cache_set.find(self._config.tag(address))
        if found is None:
            return False
        found[1].invalidate()
        self.stats.invalidations += 1
        return True

    def dirty_lines(self) -> list[int]:
        """Block addresses of all dirty lines (diagnostics / drain)."""
        dirty = []
        for set_index, cache_set in enumerate(self._sets):
            for block in cache_set:
                if block.valid and block.dirty:
                    dirty.append(self._block_address(set_index, block.tag))
        return dirty

    # ------------------------------------------------------------------
    def _access(self, address: int, is_write: bool, data: np.ndarray | None) -> AccessResult:
        set_index = self._config.set_index(address)
        cache_set = self._sets[set_index]
        tag = self._config.tag(address)
        self._stamp += 1

        found = cache_set.find(tag)
        if found is not None:
            way, block = found
            cache_set.touch(way, self._stamp)
            if is_write:
                self.stats.write_hits += 1
                if self._config.write_policy is WritePolicy.WRITE_BACK:
                    block.state = BlockState.MODIFIED
                else:
                    self.stats.write_throughs += 1
                if self._store_data and data is not None:
                    block.data = self._coerce_data(data)
            else:
                self.stats.read_hits += 1
            return AccessResult(hit=True, data=block.data if not is_write else None)

        # Miss path: allocate (write-allocate for write-back; no-allocate
        # writes for write-through caches go straight to the next level).
        if is_write:
            self.stats.write_misses += 1
            if self._config.write_policy is WritePolicy.WRITE_THROUGH:
                self.stats.write_throughs += 1
                return AccessResult(hit=False)
        else:
            self.stats.read_misses += 1

        way = cache_set.victim_way()
        block = cache_set.ways[way]
        victim, writeback = self._evict_if_needed(set_index, block)
        block.tag = tag
        block.state = BlockState.MODIFIED if (
            is_write and self._config.write_policy is WritePolicy.WRITE_BACK
        ) else BlockState.EXCLUSIVE
        block.data = self._coerce_data(data)
        cache_set.touch(way, self._stamp)
        self.stats.fills += 1
        return AccessResult(
            hit=False,
            victim_address=victim,
            writeback_address=writeback,
            fill_address=self._config.block_address(address),
        )

    def _evict_if_needed(
        self, set_index: int, block: CacheBlock
    ) -> tuple[int | None, int | None]:
        """Evict a victim block if valid; returns (victim, dirty-writeback)."""
        if not block.valid:
            return None, None
        self.stats.evictions += 1
        victim = self._block_address(set_index, block.tag)
        writeback = None
        if block.dirty and self._config.write_policy is WritePolicy.WRITE_BACK:
            self.stats.dirty_evictions += 1
            writeback = victim
        block.invalidate()
        return victim, writeback

    def _block_address(self, set_index: int, tag: int) -> int:
        return (tag * self._config.n_sets + set_index) * self._config.line_bytes

    def _coerce_data(self, data: np.ndarray | None) -> np.ndarray | None:
        if not self._store_data:
            return None
        if data is None:
            return np.zeros(self._config.line_bytes, dtype=np.uint8)
        arr = np.asarray(data, dtype=np.uint8)
        if arr.size != self._config.line_bytes:
            raise ValueError(
                f"line data must be {self._config.line_bytes} bytes, got {arr.size}"
            )
        return arr.copy()
