"""Cache substrate: functional set-associative caches, the 2D-protected
cache controller, and a small two-level hierarchy."""

from .block import BlockState, CacheBlock, CacheSet
from .cache import (
    AccessResult,
    CacheConfig,
    CacheStats,
    SetAssociativeCache,
    WritePolicy,
)
from .controller import LineReadResult, ProtectedCacheController
from .hierarchy import CacheHierarchy, HierarchyStats, MainMemory

__all__ = [
    "BlockState",
    "CacheBlock",
    "CacheSet",
    "AccessResult",
    "CacheConfig",
    "CacheStats",
    "SetAssociativeCache",
    "WritePolicy",
    "LineReadResult",
    "ProtectedCacheController",
    "CacheHierarchy",
    "HierarchyStats",
    "MainMemory",
]
