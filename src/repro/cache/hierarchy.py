"""A small two-level cache hierarchy: per-core L1 data caches + shared L2.

This is the functional (data-carrying) counterpart of the CMP systems in
Table 1: each core has a private L1 data cache and all cores share one L2,
both optionally protected by 2D coding via
:class:`~repro.cache.controller.ProtectedCacheController`.  Backing store
is a simple byte-addressable memory dictionary.

The hierarchy keeps the coherence model deliberately simple (write-back,
write-allocate, inclusive L2, invalidate-on-remote-write), because the
functional hierarchy exists to demonstrate end-to-end data integrity under
error injection — the performance evaluation of Fig. 5/6 uses the timing
model in :mod:`repro.cmp` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.array import ReadStatus

from .cache import CacheConfig
from .controller import LineReadResult, ProtectedCacheController

__all__ = ["MainMemory", "CacheHierarchy", "HierarchyStats"]


class MainMemory:
    """Byte-addressable backing store with line-granularity access."""

    def __init__(self, line_bytes: int = 64):
        self._line_bytes = line_bytes
        self._lines: dict[int, np.ndarray] = {}
        self.reads = 0
        self.writes = 0

    def read_line(self, address: int) -> np.ndarray:
        self.reads += 1
        block = (address // self._line_bytes) * self._line_bytes
        return self._lines.get(block, np.zeros(self._line_bytes, dtype=np.uint8)).copy()

    def write_line(self, address: int, data: np.ndarray) -> None:
        self.writes += 1
        block = (address // self._line_bytes) * self._line_bytes
        arr = np.asarray(data, dtype=np.uint8)
        if arr.size != self._line_bytes:
            raise ValueError(f"line must be {self._line_bytes} bytes")
        self._lines[block] = arr.copy()


@dataclass
class HierarchyStats:
    """End-to-end counters for the functional hierarchy."""

    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    writebacks_to_l2: int = 0
    writebacks_to_memory: int = 0
    uncorrectable_reads: int = 0


class CacheHierarchy:
    """Per-core private L1 data caches in front of a shared L2."""

    def __init__(
        self,
        l1_controllers: list[ProtectedCacheController],
        l2_controller: ProtectedCacheController,
        memory: MainMemory | None = None,
    ):
        if not l1_controllers:
            raise ValueError("at least one L1 cache is required")
        line_bytes = l2_controller.config.line_bytes
        for l1 in l1_controllers:
            if l1.config.line_bytes != line_bytes:
                raise ValueError("all caches must share the same line size")
        self._l1s = l1_controllers
        self._l2 = l2_controller
        self._memory = memory if memory is not None else MainMemory(line_bytes)
        self._line_bytes = line_bytes
        self.stats = HierarchyStats()

    # ------------------------------------------------------------------
    @property
    def l1_caches(self) -> list[ProtectedCacheController]:
        return self._l1s

    @property
    def l2_cache(self) -> ProtectedCacheController:
        return self._l2

    @property
    def memory(self) -> MainMemory:
        return self._memory

    @property
    def n_cores(self) -> int:
        return len(self._l1s)

    # ------------------------------------------------------------------
    def load(self, core: int, address: int) -> np.ndarray:
        """Load a full line through core ``core``'s L1."""
        self.stats.loads += 1
        l1 = self._l1(core)
        result = l1.read_line(address)
        if result.hit:
            self.stats.l1_hits += 1
            self._note_status(result)
            return result.data
        self.stats.l1_misses += 1
        # Another core may hold the only up-to-date (dirty) copy: flush it
        # into the shared L2 first (the L1-to-L1 transfer path of Fig. 5 is
        # modelled as a transfer through the shared L2).
        for other in self._l1s:
            if other is not l1 and other.cache.contains(address):
                transferred = other.evict_line(address)
                if transferred is not None:
                    self._l2_write(address, transferred)
        data = self._fetch_from_l2(address)
        fill = l1.fill_line(address, data, dirty=False)
        self._handle_l1_writeback(fill)
        return data

    def store(self, core: int, address: int, data: np.ndarray) -> None:
        """Store a full line through core ``core``'s L1 (write-back, allocate)."""
        self.stats.stores += 1
        l1 = self._l1(core)
        # Simple coherence: a writer invalidates every other core's copy.
        for other_index, other in enumerate(self._l1s):
            if other is not l1 and other.cache.contains(address):
                evicted = other.evict_line(address)
                if evicted is not None:
                    self._l2_write(address, evicted)
        hit = l1.cache.contains(address)
        if hit:
            self.stats.l1_hits += 1
        else:
            self.stats.l1_misses += 1
            # write-allocate: fetch the rest of the line first
            current = self._fetch_from_l2(address)
            fill = l1.fill_line(address, current, dirty=False)
            self._handle_l1_writeback(fill)
        result = l1.write_line(address, data)
        self._handle_l1_writeback(result)

    def drain(self) -> None:
        """Write every dirty line back down to memory (used at test end)."""
        for l1 in self._l1s:
            for block_address in l1.cache.dirty_lines():
                data = l1.evict_line(block_address)
                if data is not None:
                    self._l2_write(block_address, data)
        for block_address in self._l2.cache.dirty_lines():
            data = self._l2.evict_line(block_address)
            if data is not None:
                self._memory.write_line(block_address, data)
                self.stats.writebacks_to_memory += 1

    # ------------------------------------------------------------------
    def _l1(self, core: int) -> ProtectedCacheController:
        if not 0 <= core < len(self._l1s):
            raise ValueError(f"core {core} out of range")
        return self._l1s[core]

    def _fetch_from_l2(self, address: int) -> np.ndarray:
        result = self._l2.read_line(address)
        if result.hit:
            self.stats.l2_hits += 1
            self._note_status(result)
            return result.data
        self.stats.l2_misses += 1
        data = self._memory.read_line(address)
        fill = self._l2.fill_line(address, data, dirty=False)
        self._handle_l2_writeback(fill)
        return data

    def _l2_write(self, address: int, data: np.ndarray) -> None:
        self.stats.writebacks_to_l2 += 1
        result = self._l2.write_line(address, data)
        self._handle_l2_writeback(result)

    def _handle_l1_writeback(self, result) -> None:
        """Forward a dirty line evicted from an L1 down into the L2."""
        if result.writeback_address is None:
            return
        payload = (
            result.evicted_data
            if result.evicted_data is not None
            else np.zeros(self._line_bytes, dtype=np.uint8)
        )
        self._l2_write(result.writeback_address, payload)

    def _handle_l2_writeback(self, result) -> None:
        """Forward a dirty line evicted from the L2 down into memory."""
        if result.writeback_address is None:
            return
        payload = (
            result.evicted_data
            if result.evicted_data is not None
            else np.zeros(self._line_bytes, dtype=np.uint8)
        )
        self.stats.writebacks_to_memory += 1
        self._memory.write_line(result.writeback_address, payload)

    def _note_status(self, result: LineReadResult) -> None:
        if result.status is ReadStatus.UNCORRECTABLE:
            self.stats.uncorrectable_reads += 1
