"""Cache blocks and sets: the bookkeeping units of a set-associative cache."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BlockState", "CacheBlock", "CacheSet"]


class BlockState(enum.Enum):
    """Coherence/validity state of a cache block (simplified MESI-style)."""

    INVALID = "invalid"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"
    MODIFIED = "modified"

    @property
    def valid(self) -> bool:
        return self is not BlockState.INVALID

    @property
    def dirty(self) -> bool:
        return self is BlockState.MODIFIED


@dataclass
class CacheBlock:
    """One cache block (line): tag, state, LRU stamp and optional data."""

    tag: int = 0
    state: BlockState = BlockState.INVALID
    lru_stamp: int = 0
    data: np.ndarray | None = None

    @property
    def valid(self) -> bool:
        return self.state.valid

    @property
    def dirty(self) -> bool:
        return self.state.dirty

    def invalidate(self) -> None:
        self.state = BlockState.INVALID
        self.data = None


class CacheSet:
    """One set of a set-associative cache with true-LRU replacement."""

    def __init__(self, associativity: int):
        if associativity < 1:
            raise ValueError("associativity must be positive")
        self._ways = [CacheBlock() for _ in range(associativity)]

    # ------------------------------------------------------------------
    @property
    def associativity(self) -> int:
        return len(self._ways)

    @property
    def ways(self) -> list[CacheBlock]:
        return self._ways

    def __iter__(self):
        return iter(self._ways)

    # ------------------------------------------------------------------
    def find(self, tag: int) -> tuple[int, CacheBlock] | None:
        """Return ``(way_index, block)`` for a hit, or None on a miss."""
        for index, block in enumerate(self._ways):
            if block.valid and block.tag == tag:
                return index, block
        return None

    def victim_way(self) -> int:
        """Way to evict: an invalid way if present, else the LRU way."""
        for index, block in enumerate(self._ways):
            if not block.valid:
                return index
        lru_index = 0
        lru_stamp = self._ways[0].lru_stamp
        for index, block in enumerate(self._ways[1:], start=1):
            if block.lru_stamp < lru_stamp:
                lru_index = index
                lru_stamp = block.lru_stamp
        return lru_index

    def touch(self, way: int, stamp: int) -> None:
        """Update the LRU stamp of a way after an access."""
        self._ways[way].lru_stamp = stamp
