"""The 2D-protected cache controller: functional cache + protected banks.

This module ties the behavioural cache (:class:`SetAssociativeCache`) to
the bit-accurate 2D-protected SRAM banks
(:class:`~repro.array.twod_array.TwoDProtectedArray`):

* each cache line owns a fixed *frame* of consecutive words in one data
  bank (line bytes / word bytes words),
* every line write — store hits, miss fills, write-backs arriving from
  upper levels — goes through the bank's read-before-write path, which is
  exactly the operation stream the paper's Figure 6 accounts for,
* every line read checks the horizontal code word-by-word; detected
  uncorrectable words trigger the bank's 2D recovery.

The controller exposes the same hit/miss statistics as the raw cache plus
the protection statistics of the banks, so integration tests and examples
can inject errors into the banks and watch reads come back clean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.array import BankLayout, ReadStatus, TwoDProtectedArray
from repro.coding.base import WordCode, bits_to_int, int_to_bits

from .cache import AccessResult, CacheConfig, SetAssociativeCache

__all__ = ["ProtectedCacheController", "LineReadResult"]


@dataclass
class LineReadResult:
    """Result of reading one cache line through the protected data banks."""

    data: np.ndarray
    #: Worst word status encountered while reading the line.
    status: ReadStatus
    hit: bool

    @property
    def ok(self) -> bool:
        return self.status is not ReadStatus.UNCORRECTABLE


_STATUS_SEVERITY = {
    ReadStatus.CLEAN: 0,
    ReadStatus.CORRECTED_HORIZONTAL: 1,
    ReadStatus.CORRECTED_2D: 2,
    ReadStatus.UNCORRECTABLE: 3,
}


class ProtectedCacheController:
    """A cache whose data array is stored in 2D-protected SRAM banks.

    Parameters
    ----------
    config:
        Cache geometry (size, associativity, line size, banks).
    horizontal_code:
        Per-word horizontal code for the data banks.
    word_bits:
        Protected word width (64 for L1-style banks, 256 for L2-style).
    interleave_degree:
        Physical bit interleaving inside the banks.
    vertical_groups:
        Number of vertical parity rows per bank (EDC-V).
    """

    def __init__(
        self,
        config: CacheConfig,
        horizontal_code: WordCode,
        word_bits: int = 64,
        interleave_degree: int = 4,
        vertical_groups: int = 32,
    ):
        if word_bits % 8:
            raise ValueError("word_bits must be a whole number of bytes")
        line_bits = config.line_bytes * 8
        if line_bits % word_bits:
            raise ValueError("line size must be a whole number of protected words")
        if horizontal_code.data_bits != word_bits:
            raise ValueError("horizontal code width must equal word_bits")

        self._config = config
        self._cache = SetAssociativeCache(config, store_data=True)
        self._hcode = horizontal_code
        self._word_bits = word_bits
        self._words_per_line = line_bits // word_bits

        total_words = config.n_lines * self._words_per_line
        words_per_bank = -(-total_words // config.n_banks)
        # Round up so every bank row is full under the interleave degree and
        # each bank has at least vertical_groups rows.
        min_words = max(
            interleave_degree * vertical_groups,
            -(-words_per_bank // interleave_degree) * interleave_degree,
        )
        layout = BankLayout(
            n_words=min_words,
            data_bits=word_bits,
            check_bits=horizontal_code.check_bits,
            interleave_degree=interleave_degree,
        )
        self._banks = [
            TwoDProtectedArray(layout, horizontal_code, vertical_groups, name=f"{config.name}.bank{i}")
            for i in range(config.n_banks)
        ]
        self._words_per_bank = min_words

        # frame bookkeeping: block address -> line frame index
        self._frames: dict[int, int] = {}
        self._free_frames = list(range(config.n_lines - 1, -1, -1))

    # ------------------------------------------------------------------
    @property
    def config(self) -> CacheConfig:
        return self._config

    @property
    def cache(self) -> SetAssociativeCache:
        """The underlying functional (tag/state) cache."""
        return self._cache

    @property
    def banks(self) -> list[TwoDProtectedArray]:
        """The protected data banks (exposed for error injection)."""
        return self._banks

    @property
    def words_per_line(self) -> int:
        return self._words_per_line

    # ------------------------------------------------------------------
    # line-granularity operations used by the hierarchy
    # ------------------------------------------------------------------
    def read_line(self, address: int) -> LineReadResult:
        """Read a full line; a miss returns ``hit=False`` and no data.

        Misses do not allocate — installing a fetched line is the
        hierarchy's job via :meth:`fill_line`, which keeps frame ownership
        (and dirty-eviction data capture) in one place.
        """
        if not self._cache.contains(address):
            self._cache.stats.read_misses += 1
            return LineReadResult(
                data=np.zeros(self._config.line_bytes, dtype=np.uint8),
                status=ReadStatus.CLEAN,
                hit=False,
            )
        self._cache.read(address)  # hit: update LRU and hit statistics
        data, status = self._read_frame(self._config.block_address(address))
        return LineReadResult(data=data, status=status, hit=True)

    def write_line(self, address: int, data: np.ndarray) -> AccessResult:
        """Write a full line (store or incoming write-back); allocate on miss."""
        data = self._coerce_line(data)
        result = self._cache.write(address, data)
        if not result.hit:
            if not self._cache.contains(address):
                # Write-through, no-allocate miss: the data bypasses this
                # cache entirely and goes to the next level.
                return result
            # Write-allocate: the functional cache installed the line; give
            # it a frame (handling any eviction first).
            result.evicted_data = self._capture_frame(result.writeback_address)
            self._release_frame(result.victim_address)
            self._assign_frame(self._config.block_address(address))
        self._write_frame(address, data)
        return result

    def fill_line(self, address: int, data: np.ndarray, dirty: bool = False) -> AccessResult:
        """Install a line fetched from the next level."""
        data = self._coerce_line(data)
        result = self._cache.fill(address, data, dirty=dirty)
        result.evicted_data = self._capture_frame(result.writeback_address)
        self._release_frame(result.victim_address)
        self._assign_frame(self._config.block_address(address))
        self._write_frame(address, data)
        return result

    def evict_line(self, address: int) -> np.ndarray | None:
        """Read out and invalidate a line (used when draining dirty data)."""
        block_address = self._config.block_address(address)
        if block_address not in self._frames:
            return None
        data, _status = self._read_frame(block_address)
        self._cache.invalidate(block_address)
        self._release_frame(block_address)
        return data

    # ------------------------------------------------------------------
    # protection statistics
    # ------------------------------------------------------------------
    def total_recoveries(self) -> int:
        return sum(bank.stats.recoveries for bank in self._banks)

    def total_horizontal_corrections(self) -> int:
        return sum(bank.stats.horizontal_corrections for bank in self._banks)

    def total_read_before_writes(self) -> int:
        return sum(bank.stats.read_before_writes for bank in self._banks)

    def total_uncorrectable(self) -> int:
        return sum(bank.stats.uncorrectable_reads for bank in self._banks)

    # ------------------------------------------------------------------
    def _coerce_line(self, data: np.ndarray) -> np.ndarray:
        arr = np.asarray(data, dtype=np.uint8)
        if arr.size != self._config.line_bytes:
            raise ValueError(
                f"line data must be {self._config.line_bytes} bytes, got {arr.size}"
            )
        return arr

    def _assign_frame(self, block_address: int) -> int:
        if block_address in self._frames:
            return self._frames[block_address]
        if not self._free_frames:
            raise RuntimeError("no free line frames; cache bookkeeping out of sync")
        frame = self._free_frames.pop()
        self._frames[block_address] = frame
        return frame

    def _capture_frame(self, block_address: int | None) -> np.ndarray | None:
        """Read out a frame's data before it is released (dirty eviction)."""
        if block_address is None or block_address not in self._frames:
            return None
        data, _status = self._read_frame(block_address)
        return data

    def _release_frame(self, block_address: int | None) -> None:
        if block_address is None:
            return
        frame = self._frames.pop(block_address, None)
        if frame is not None:
            self._free_frames.append(frame)

    def _frame_words(self, block_address: int) -> tuple[TwoDProtectedArray, range]:
        frame = self._frames[block_address]
        global_word = frame * self._words_per_line
        bank_index = global_word // self._words_per_bank % len(self._banks)
        start = global_word % self._words_per_bank
        return self._banks[bank_index], range(start, start + self._words_per_line)

    def _write_frame(self, address: int, data: np.ndarray) -> None:
        block_address = self._config.block_address(address)
        bank, words = self._frame_words(block_address)
        bytes_per_word = self._word_bits // 8
        for i, word_index in enumerate(words):
            chunk = data[i * bytes_per_word : (i + 1) * bytes_per_word]
            bits = np.unpackbits(chunk, bitorder="little")
            bank.write_word(word_index, bits)

    def _read_frame(self, block_address: int) -> tuple[np.ndarray, ReadStatus]:
        bank, words = self._frame_words(block_address)
        bytes_per_word = self._word_bits // 8
        out = np.zeros(self._config.line_bytes, dtype=np.uint8)
        worst = ReadStatus.CLEAN
        for i, word_index in enumerate(words):
            outcome = bank.read_word(word_index)
            out[i * bytes_per_word : (i + 1) * bytes_per_word] = np.packbits(
                outcome.data, bitorder="little"
            )
            if _STATUS_SEVERITY[outcome.status] > _STATUS_SEVERITY[worst]:
                worst = outcome.status
        return out, worst
