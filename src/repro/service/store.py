"""TTL'd result store: spec-hash → serialized :class:`Result`.

The engine's :class:`~repro.engine.cache.ResultCache` memoizes *engine
runs* (npz verdict payloads keyed by engine-run parameters).  The
service needs one level up: finished **API results** keyed by the
submitted spec's :meth:`~repro.api.spec.ExperimentSpec.content_hash`,
so a resubmission after completion is served without touching the
engine at all.  :class:`ResultStore` provides that layer:

- entries hold the result's canonical JSON text (the exact
  ``Result.to_json()`` bytes the HTTP layer serves; ``get`` round-trips
  them back through :meth:`Result.from_json` losslessly);
- every entry expires ``ttl_seconds`` after it was stored; expired
  entries are evicted lazily on access and eagerly by :meth:`sweep`
  (the service's housekeeping task), emitting ``store.evict``;
- an optional ``max_entries`` bound evicts oldest-stored-first once
  exceeded (insertion-order LRU: a re-``put`` refreshes the entry's
  position and clock);
- optional disk persistence (``root``): entries are mirrored to
  ``<root>/<hash>.json`` with atomic writes, and a cold ``get`` falls
  back to disk (mtime-checked against the TTL) so a restarted service
  keeps serving recent results;
- hit/miss/store/evict/coalesce counters feed ``GET /stats``.

The store also *composes with* the engine cache: handed the session's
``ResultCache``, :meth:`sweep` forwards the TTL to
:meth:`ResultCache.prune` and :meth:`stats` embeds the engine cache's
entry/byte counts, so one housekeeping loop bounds both layers.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional

from repro.obs import emit

from repro.api.result import Result, ResultError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cache import ResultCache

__all__ = ["ResultStore"]

_log = logging.getLogger(__name__)


class _Entry:
    __slots__ = ("text", "stored_at")

    def __init__(self, text: str, stored_at: float):
        self.text = text
        self.stored_at = stored_at


class ResultStore:
    """In-memory (optionally disk-mirrored) TTL'd map of finished results.

    Parameters
    ----------
    ttl_seconds:
        Lifetime of every entry; ``None`` disables expiry.
    max_entries:
        Optional cap on live in-memory entries (oldest evicted first).
    root:
        Optional directory for the disk mirror (created on demand).
    engine_cache:
        Optional :class:`~repro.engine.cache.ResultCache` to co-manage:
        :meth:`sweep` prunes it by the same TTL and :meth:`stats`
        reports its shape alongside the store's.
    clock:
        Wall-clock source (injectable for tests).
    """

    def __init__(
        self,
        *,
        ttl_seconds: "float | None" = 3600.0,
        max_entries: "int | None" = None,
        root: "str | Path | None" = None,
        engine_cache: "ResultCache | None" = None,
        clock: Callable[[], float] = time.time,
    ):
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self.ttl_seconds = ttl_seconds
        self.max_entries = max_entries
        self._root = Path(root) if root is not None else None
        self._engine_cache = engine_cache
        self._clock = clock
        self._entries: "dict[str, _Entry]" = {}  # insertion-ordered
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evicted = 0
        self.coalesced = 0

    # ------------------------------------------------------------------
    @property
    def root(self) -> "Path | None":
        return self._root

    def _path_for(self, spec_hash: str) -> "Path | None":
        return self._root / f"{spec_hash}.json" if self._root else None

    def _expired(self, stored_at: float) -> bool:
        return (
            self.ttl_seconds is not None
            and self._clock() - stored_at > self.ttl_seconds
        )

    # ------------------------------------------------------------------
    def put(self, result: Result) -> str:
        """Store a finished result under its spec's content hash."""
        spec_hash = result.spec_hash
        text = result.to_json()
        self._entries.pop(spec_hash, None)  # re-put refreshes LRU order
        self._entries[spec_hash] = _Entry(text, self._clock())
        self.stores += 1
        emit(
            "store.store",
            logger=_log,
            key=spec_hash,
            bytes=len(text),
        )
        path = self._path_for(spec_hash)
        if path is not None:
            self._write_disk(path, text)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                oldest = next(iter(self._entries))
                self._evict(oldest, reason="max_entries")
        return spec_hash

    def get_json(self, spec_hash: str) -> "Optional[str]":
        """The stored result's canonical JSON text, or ``None``.

        This is the HTTP fast path: the text is served byte-for-byte
        without a parse/serialize round trip.
        """
        entry = self._entries.get(spec_hash)
        if entry is not None:
            if self._expired(entry.stored_at):
                self._evict(spec_hash, reason="ttl")
            else:
                self.hits += 1
                emit("store.hit", logger=_log, key=spec_hash)
                return entry.text
        text = self._load_disk(spec_hash)
        if text is not None:
            # Warm the memory tier with the disk entry's remaining TTL
            # budget intact (approximated by the file's mtime).
            self.hits += 1
            emit("store.hit", logger=_log, key=spec_hash, tier="disk")
            return text
        self.misses += 1
        emit("store.miss", logger=_log, key=spec_hash)
        return None

    def get(self, spec_hash: str) -> "Optional[Result]":
        """The stored :class:`Result` (lossless round trip), or ``None``."""
        text = self.get_json(spec_hash)
        return Result.from_json(text) if text is not None else None

    def note_coalesced(self, n: int = 1) -> None:
        """Count submissions that attached to an in-flight job instead
        of re-running (surfaced as the store's ``coalesced`` stat)."""
        self.coalesced += n

    # ------------------------------------------------------------------
    def _evict(self, spec_hash: str, *, reason: str) -> None:
        entry = self._entries.pop(spec_hash, None)
        if entry is None:
            return
        self.evicted += 1
        emit(
            "store.evict",
            logger=_log,
            key=spec_hash,
            reason=reason,
            age_seconds=round(self._clock() - entry.stored_at, 3),
        )
        path = self._path_for(spec_hash)
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass

    def sweep(self) -> int:
        """Evict every expired entry (memory and disk mirror); returns
        the eviction count.  Also forwards the TTL to the co-managed
        engine cache's :meth:`~repro.engine.cache.ResultCache.prune`."""
        removed = 0
        if self.ttl_seconds is not None:
            for spec_hash in [
                h for h, e in self._entries.items() if self._expired(e.stored_at)
            ]:
                self._evict(spec_hash, reason="ttl")
                removed += 1
            removed += self._sweep_disk()
            if self._engine_cache is not None:
                removed += self._engine_cache.prune(ttl_seconds=self.ttl_seconds)
        return removed

    def clear(self) -> int:
        """Drop every entry (memory and disk); returns the count."""
        removed = 0
        for spec_hash in list(self._entries):
            self._evict(spec_hash, reason="clear")
            removed += 1
        if self._root is not None and self._root.is_dir():
            for path in self._root.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    continue
        return removed

    # ------------------------------------------------------------------
    # Disk mirror
    # ------------------------------------------------------------------
    def _write_disk(self, path: Path, text: str) -> None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{path.stem[:16]}-", suffix=".tmp", dir=path.parent
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError as exc:  # persistence is best-effort
            _log.warning("store: could not persist %s: %r", path, exc)

    def _load_disk(self, spec_hash: str) -> "Optional[str]":
        path = self._path_for(spec_hash)
        if path is None or not path.is_file():
            return None
        try:
            stat = path.stat()
            if self.ttl_seconds is not None and (
                self._clock() - stat.st_mtime > self.ttl_seconds
            ):
                path.unlink(missing_ok=True)
                return None
            text = path.read_text(encoding="utf-8")
            Result.from_json(text)  # refuse to serve a corrupt mirror
        except (OSError, ResultError):
            return None
        self._entries[spec_hash] = _Entry(text, stat.st_mtime)
        return text

    def _sweep_disk(self) -> int:
        if self._root is None or not self._root.is_dir():
            return 0
        removed = 0
        cutoff = self._clock() - self.ttl_seconds
        for path in self._root.glob("*.json"):
            try:
                if path.stat().st_mtime < cutoff and path.stem not in self._entries:
                    path.unlink()
                    removed += 1
                    self.evicted += 1
                    emit(
                        "store.evict",
                        logger=_log,
                        key=path.stem,
                        reason="ttl",
                        tier="disk",
                    )
            except OSError:
                continue
        return removed

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-pure shape + counters digest (the ``/stats`` block)."""
        lookups = self.hits + self.misses
        payload = {
            "entries": len(self._entries),
            "bytes": sum(len(e.text) for e in self._entries.values()),
            "ttl_seconds": self.ttl_seconds,
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evicted": self.evicted,
            "coalesced": self.coalesced,
            "hit_rate": (self.hits / lookups) if lookups else None,
            "persisted": self._root is not None,
        }
        if self._engine_cache is not None:
            payload["engine_cache"] = self._engine_cache.stats()
        return payload

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, spec_hash: str) -> bool:
        entry = self._entries.get(spec_hash)
        return entry is not None and not self._expired(entry.stored_at)

    def __repr__(self) -> str:
        return (
            f"ResultStore(entries={len(self._entries)}, "
            f"ttl={self.ttl_seconds}, hits={self.hits}, misses={self.misses})"
        )
