"""The experiment service: submissions in, deduplicated results out.

:class:`ExperimentService` composes the service's pieces around one
shared :class:`~repro.api.session.Session` (hence one persistent
:class:`~repro.engine.executor.SharedExecutor` and one engine
:class:`~repro.engine.cache.ResultCache`):

- a :class:`~repro.service.queue.JobQueue` admitting specs with
  priorities, bounded capacity, and single-flight dedup by
  ``content_hash()``;
- a :class:`~repro.service.workers.WorkerPool` running jobs on the
  session via ``asyncio.to_thread`` with timeout/retry/cancellation;
- a :class:`~repro.service.store.ResultStore` serving completed
  results by hash with TTL'd eviction.

A submission takes the cheapest path available::

    store hit  ->  a synthetic done job, no queue, no engine
    in flight  ->  attach to the existing job (dedup coalesce)
    otherwise  ->  a new queued job (429 when the queue is full)

Every stage emits ``service.*`` telemetry into the service's
long-lived :class:`~repro.obs.RunRecorder` (installed as the ambient
recorder for the service's whole life), while each job's engine run
still gets its own per-run recorder inside ``Session.run`` — so
``GET /stats`` sees the service and every ``Result`` still carries its
own ``meta["telemetry"]``.

The service is asyncio-single-threaded at the control plane: submit,
job lookup, stats and shutdown all run on the event loop; only the
blocking engine work leaves it.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import time
from pathlib import Path
from typing import Optional

from repro.api.registry import get_experiment
from repro.api.result import RESULT_SCHEMA_VERSION
from repro.api.session import Session
from repro.api.spec import ExperimentSpec
from repro.obs import RunRecorder, emit, use_recorder
from repro.obs.metrics import MetricsRegistry

from .instruments import ServiceInstruments
from .queue import Job, JobQueue
from .store import ResultStore
from .workers import WorkerPool

__all__ = ["ExperimentService"]

_log = logging.getLogger(__name__)

#: Terminal jobs older than this many TTL sweeps are dropped from the
#: id registry (their results live on in the store).
_HISTORY_LIMIT = 10_000


class ExperimentService:
    """Long-running, deduplicating front end over one shared session.

    Parameters
    ----------
    workers:
        Concurrent job executions (asyncio worker tasks).
    engine_workers:
        Process count of the shared session's engine executor.
    queue_capacity:
        Bound on queued (not yet running) jobs; hit -> 429.
    ttl_seconds:
        Result-store TTL (also forwarded to the engine cache's prune
        during housekeeping sweeps).
    job_timeout:
        Default per-attempt execution timeout (``None`` = unbounded).
    max_retries / retry_backoff:
        Transient-failure retry policy (see
        :class:`~repro.service.workers.WorkerPool`).
    cache_dir:
        Engine result-cache directory for the shared session; also the
        parent of the store's disk mirror (``<cache_dir>/results/``).
        ``None`` keeps both layers memory-only.
    session:
        Inject a pre-built session (tests); otherwise one is created
        and owned (closed on :meth:`stop`).
    registry:
        Inject a :class:`~repro.obs.metrics.MetricsRegistry` for the
        service's instruments (tests asserting exact counts); the
        process-global default registry otherwise.  ``GET /metrics``
        renders whichever is in use.
    trace_dir:
        Optional directory; when set, every settled job's trace is
        persisted as ``<trace_dir>/<job_id>.json`` (span JSON + Chrome
        ``traceEvents`` in one payload, see
        :meth:`repro.obs.trace.Trace.export`).
    profile_dir:
        Optional directory; when set, every executed job runs with
        ``profile=True`` and its profile payload (sampled stacks,
        memory watermarks, process deltas) is persisted as
        ``<profile_dir>/<job_id>.json`` and served at
        ``GET /jobs/{id}/profile``.  Profiling is observational only —
        results and dedup hashes are unchanged.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        engine_workers: int = 1,
        queue_capacity: int = 1024,
        ttl_seconds: "float | None" = 3600.0,
        job_timeout: "float | None" = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        transient: "tuple[type[BaseException], ...]" = (ConnectionError, OSError),
        cache_dir: "str | Path | None" = None,
        session: "Session | None" = None,
        mp_context=None,
        registry: "MetricsRegistry | None" = None,
        trace_dir: "str | Path | None" = None,
        profile_dir: "str | Path | None" = None,
    ):
        self.recorder = RunRecorder()
        self.instruments = ServiceInstruments(registry)
        self._trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._profile_dir = (
            Path(profile_dir) if profile_dir is not None else None
        )
        self._owns_session = session is None
        self.session = session or Session(
            workers=engine_workers, cache_dir=cache_dir, mp_context=mp_context
        )
        store_root = (
            Path(cache_dir) / "results" if cache_dir is not None else None
        )
        self.store = ResultStore(
            ttl_seconds=ttl_seconds,
            root=store_root,
            engine_cache=self.session.cache,
        )
        self.queue = JobQueue(capacity=queue_capacity)
        self.pool = WorkerPool(
            self.queue,
            self._execute,
            workers=workers,
            job_timeout=job_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            transient=transient,
            on_success=self._on_success,
            on_finish=self._on_finish,
            instruments=self.instruments,
        )
        self._jobs: "dict[str, Job]" = {}
        self._synthetic = 0  # store-served submissions (no queue entry)
        self._housekeeper: "asyncio.Task | None" = None
        self._recorder_scope = None
        self._started = False
        self._started_at: "float | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Install the service recorder, spawn workers and housekeeping."""
        if self._started:
            return
        self._started = True
        self._started_at = time.time()
        if self._trace_dir is not None:
            self._trace_dir.mkdir(parents=True, exist_ok=True)
        if self._profile_dir is not None:
            self._profile_dir.mkdir(parents=True, exist_ok=True)
        # The ambient recorder for everything the loop thread emits;
        # tasks created below inherit it through their contextvars copy.
        self._recorder_scope = use_recorder(self.recorder)
        self._recorder_scope.__enter__()
        emit(
            "service.start",
            logger=_log,
            level=logging.INFO,
            workers=self.pool.workers,
            engine_workers=self.session.workers,
            queue_capacity=self.queue.capacity,
            ttl_seconds=self.store.ttl_seconds,
        )
        self.pool.start()
        interval = (
            min(max(self.store.ttl_seconds / 4.0, 1.0), 60.0)
            if self.store.ttl_seconds is not None
            else 60.0
        )
        self._housekeeper = asyncio.get_running_loop().create_task(
            self._housekeeping(interval), name="repro-service-housekeeping"
        )

    async def stop(self, *, drain: bool = True) -> None:
        """Shut down: close admission, settle work, release the engine.

        ``drain=True`` (graceful) lets workers finish everything already
        admitted — running *and* queued — before exiting; ``drain=False``
        cancels queued jobs and only waits out the running ones.
        """
        if not self._started:
            return
        emit(
            "service.stop",
            logger=_log,
            level=logging.INFO,
            drain=drain,
            queued=self.queue.depth,
            active=self.pool.active,
        )
        self.queue.close()
        if not drain:
            self.queue.cancel_pending()
        await self.pool.join()
        if self._housekeeper is not None:
            self._housekeeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._housekeeper
            self._housekeeper = None
        if self._owns_session:
            self.session.close()
        if self._recorder_scope is not None:
            try:
                self._recorder_scope.__exit__(None, None, None)
            except ValueError:
                # stop() ran in a different task than start(): that
                # task's context copy dies with it, so there is nothing
                # to restore here.
                pass
            self._recorder_scope = None
        self._started = False

    async def _housekeeping(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            evicted = self.store.sweep()
            self.instruments.store_entries.set(len(self.store))
            self._trim_history()
            if evicted:
                emit(
                    "service.sweep",
                    logger=_log,
                    evicted=evicted,
                    store_entries=len(self.store),
                )

    def _trim_history(self) -> None:
        """Cap the job-id registry; only terminal jobs are dropped."""
        excess = len(self._jobs) - _HISTORY_LIMIT
        if excess <= 0:
            return
        for job_id in [
            jid for jid, job in self._jobs.items() if job.done
        ][:excess]:
            del self._jobs[job_id]

    # ------------------------------------------------------------------
    # Submission / lookup
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: ExperimentSpec,
        *,
        priority: int = 0,
        timeout: "float | None" = None,
    ) -> "tuple[Job, str]":
        """Admit one spec; returns ``(job, via)``.

        ``via`` says which path served it: ``"store"`` (already
        completed, synthetic done job), ``"coalesced"`` (attached to an
        in-flight job) or ``"queued"`` (new work).  Unknown experiment
        names raise :class:`~repro.api.registry.UnknownExperimentError`
        here, at admission, not inside a worker; a full queue raises
        :class:`~repro.service.queue.QueueFullError`.
        """
        get_experiment(spec.experiment)  # admission-time validation
        spec_hash = spec.content_hash()
        admitted = time.time()
        ins = self.instruments
        emit(
            "service.submit",
            logger=_log,
            hash=spec_hash,
            experiment=spec.experiment,
            priority=priority,
        )
        stored = self.store.get(spec_hash)
        if stored is not None:
            ins.store_lookups_total.labels(result="hit").inc()
            ins.submissions_total.labels(via="store").inc()
            ins.jobs_total.labels(outcome="deduped").inc()
            job = self._synthetic_job(spec, stored)
            job.trace.add_span(
                "admit",
                start=admitted,
                end=time.time(),
                via="store",
                experiment=spec.experiment,
                hash=spec_hash,
            )
            self._persist_trace(job)
            return job, "store"
        ins.store_lookups_total.labels(result="miss").inc()
        job, deduped = self.queue.submit(
            spec, priority=priority, timeout=timeout
        )
        if deduped:
            self.store.note_coalesced()
            ins.submissions_total.labels(via="coalesced").inc()
            ins.jobs_total.labels(outcome="deduped").inc()
            emit(
                "service.dedup_hit",
                logger=_log,
                hash=spec_hash,
                job=job.id,
                submissions=job.submissions,
            )
        else:
            self._jobs[job.id] = job
            ins.submissions_total.labels(via="queued").inc()
            ins.queue_depth.set(self.queue.depth)
        job.trace.add_span(
            "admit",
            start=admitted,
            end=time.time(),
            via="coalesced" if deduped else "queued",
            experiment=spec.experiment,
            hash=spec_hash,
            priority=priority,
            submissions=job.submissions,
        )
        return job, "coalesced" if deduped else "queued"

    def _synthetic_job(self, spec: ExperimentSpec, result) -> Job:
        """A pre-completed job wrapping a store hit (keeps the job API
        uniform: every submission yields an awaitable job)."""
        self._synthetic += 1
        job = Job(f"s{self._synthetic:06d}", spec)
        job.from_store = True
        job.mark_running()
        job.resolve(result)
        self._jobs[job.id] = job
        return job

    def job(self, job_id: str) -> "Optional[Job]":
        return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> "Optional[bool]":
        """Cancel by id: ``None`` unknown, else the queue's verdict."""
        job = self._jobs.get(job_id)
        if job is None:
            return None
        if job.done:
            return False
        verdict = self.queue.cancel(job)
        if verdict:
            # Cancelled while queued: the job never reaches a worker,
            # so account for it (and persist its trace) here.
            self.instruments.jobs_total.labels(outcome="cancelled").inc()
            self.instruments.queue_depth.set(self.queue.depth)
            self._persist_trace(job)
        return verdict

    # ------------------------------------------------------------------
    # Execution (worker thread + loop-side hooks)
    # ------------------------------------------------------------------
    def _execute(self, job: Job):
        """Blocking engine run (called from a worker thread)."""
        self.instruments.engine_runs_total.inc()
        if self._profile_dir is not None:
            return self.session.run(job.spec, profile=True)
        return self.session.run(job.spec)

    def _on_success(self, job: Job, result) -> None:
        """Store the result before the job resolves (event loop).

        Runs inside the worker's ``worker.run`` span context, so the
        ``store.write`` span nests under it automatically.
        """
        with job.trace.span("store.write", hash=job.hash):
            self.store.put(result)
        self.instruments.store_entries.set(len(self.store))

    def _on_finish(self, job: Job) -> None:
        """Terminal-state hook (event loop): persist trace + profile."""
        self._persist_trace(job)
        self._persist_profile(job)

    def _persist_trace(self, job: Job) -> None:
        """Best-effort write of ``<trace_dir>/<job_id>.json``."""
        if self._trace_dir is None:
            return
        path = self._trace_dir / f"{job.id}.json"
        try:
            self._trace_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(job.trace.export(), sort_keys=True),
                encoding="utf-8",
            )
        except OSError as exc:
            _log.warning("could not persist trace for job %s: %r", job.id, exc)

    def job_profile(self, job_id: str) -> "Optional[dict]":
        """The job's profile payload (``GET /jobs/{id}/profile``).

        ``None`` when the job is unknown, not settled, or ran without
        profiling (no ``--profile-dir``).
        """
        job = self._jobs.get(job_id)
        if job is None or job.result is None:
            return None
        telemetry = getattr(job.result, "telemetry", None)
        if telemetry is None:
            return None
        return (telemetry() or {}).get("profile")

    def _persist_profile(self, job: Job) -> None:
        """Best-effort write of ``<profile_dir>/<job_id>.json``."""
        if self._profile_dir is None:
            return
        profile = self.job_profile(job.id)
        if profile is None:
            return
        path = self._profile_dir / f"{job.id}.json"
        try:
            self._profile_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(profile, sort_keys=True), encoding="utf-8"
            )
        except OSError as exc:
            _log.warning(
                "could not persist profile for job %s: %r", job.id, exc
            )

    def metrics_text(self) -> str:
        """The instruments' Prometheus exposition (``GET /metrics``)."""
        return self.instruments.render()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``GET /stats`` payload: queue, jobs, store, session."""
        states: "dict[str, int]" = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        counters = self.recorder.counter_values("events.service.")
        return {
            "uptime_seconds": (
                round(time.time() - self._started_at, 3)
                if self._started_at is not None
                else None
            ),
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.queue.capacity,
                "submitted": self.queue.submitted,
                "coalesced": self.queue.coalesced,
                "closed": self.queue.closed,
            },
            "jobs": {
                "tracked": len(self._jobs),
                "active": self.pool.active,
                "executed": self.pool.executed,
                "from_store": self._synthetic,
                "by_state": states,
            },
            "dedup": {
                "hits": self.queue.coalesced,
                "store_hits": self.store.hits,
            },
            "store": self.store.stats(),
            "session": {
                "engine_workers": self.session.workers,
                "runs_started": self.session.runs_started,
                "runs_completed": self.session.runs_completed,
            },
            "service_events": counters,
        }

    def healthz(self) -> dict:
        from repro import __version__

        return {
            "status": "ok" if self._started else "stopped",
            "version": __version__,
            "schema_version": RESULT_SCHEMA_VERSION,
            "uptime_seconds": (
                round(time.time() - self._started_at, 3)
                if self._started_at is not None
                else None
            ),
            "workers": self.pool.workers,
            "queue_depth": self.queue.depth,
            "runs_completed": self.session.runs_completed,
        }

    def __repr__(self) -> str:
        return (
            f"ExperimentService(workers={self.pool.workers}, "
            f"queue={self.queue!r}, store={self.store!r})"
        )
