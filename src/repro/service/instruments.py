"""Fleet-level metric handles for one :class:`ExperimentService`.

:class:`ServiceInstruments` registers every service metric family on a
:class:`~repro.obs.metrics.MetricsRegistry` — the process-global default
in production, an injected fresh one in tests that assert exact counts —
and exposes them as plain attributes so instrumentation sites read as
one line (``instruments.jobs_total.labels(outcome="ok").inc()``).

Naming follows DESIGN.md §6: ``repro_<subsystem>_<name>_<unit>``, label
sets kept low-cardinality (outcomes, phases, experiment names — never
job ids or spec hashes).

The families
------------

- ``repro_service_submissions_total{via}`` — every admitted submission
  by serving path (``queued`` / ``coalesced`` / ``store``); the sum of
  ``coalesced`` + ``store`` is the service's dedup hit count.
- ``repro_jobs_total{outcome}`` — terminal job outcomes (``ok`` /
  ``error`` / ``timeout`` / ``cancelled``) plus one ``deduped``
  increment per submission that produced no new work.
- ``repro_job_latency_seconds{experiment}`` — end-to-end latency
  (admission to terminal state) of executed jobs.
- ``repro_job_phase_seconds{phase}`` — per-phase latency
  (``queue.wait`` / ``worker.run`` / ``store.write``).
- ``repro_queue_depth`` / ``repro_queue_wait_seconds`` — queued-job
  gauge and the admission-to-claim wait distribution.
- ``repro_workers_busy`` / ``repro_workers_total`` /
  ``repro_worker_busy_seconds_total`` — utilization: busy worker gauge
  against the pool size, plus accumulated busy seconds.
- ``repro_job_retries_total`` — transient-failure retry attempts.
- ``repro_service_store_lookups_total{result}`` — admission-time result
  -store lookups (``hit`` / ``miss``).
- ``repro_store_entries`` — live result-store entries.
- ``repro_engine_runs_total`` — jobs that actually reached
  ``Session.run`` (the non-deduplicated work; the engine cache's own
  hit/miss split lives in ``repro_engine_cache_lookups_total``).
- ``repro_process_cpu_seconds`` / ``repro_process_max_rss_bytes`` —
  process-level accounting (CPU via ``time.process_time``, RSS
  high-water mark via ``getrusage``), refreshed on every scrape.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.profile import process_usage

__all__ = ["ServiceInstruments"]

#: Queue waits and phase timings skew much shorter than engine runs.
_LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
)


class ServiceInstruments:
    """All metric families one service instance reports through."""

    def __init__(self, registry: "MetricsRegistry | None" = None):
        self.registry = registry if registry is not None else default_registry()
        r = self.registry
        self.submissions_total = r.counter(
            "repro_service_submissions_total",
            "Admitted submissions by serving path",
            ("via",),
        )
        self.jobs_total = r.counter(
            "repro_jobs_total",
            "Terminal job outcomes (plus deduped submissions)",
            ("outcome",),
        )
        self.job_latency_seconds = r.histogram(
            "repro_job_latency_seconds",
            "End-to-end job latency, admission to terminal state",
            ("experiment",),
            buckets=_LATENCY_BUCKETS,
        )
        self.job_phase_seconds = r.histogram(
            "repro_job_phase_seconds",
            "Per-phase job latency",
            ("phase",),
            buckets=_LATENCY_BUCKETS,
        )
        self.queue_depth = r.gauge(
            "repro_queue_depth",
            "Jobs queued and not yet claimed by a worker",
        )
        self.queue_wait_seconds = r.histogram(
            "repro_queue_wait_seconds",
            "Admission-to-claim wait of executed jobs",
            buckets=_LATENCY_BUCKETS,
        )
        self.workers_busy = r.gauge(
            "repro_workers_busy",
            "Workers currently executing a job",
        )
        self.workers_total = r.gauge(
            "repro_workers_total",
            "Configured worker-pool size",
        )
        self.worker_busy_seconds_total = r.counter(
            "repro_worker_busy_seconds_total",
            "Accumulated worker seconds spent executing jobs",
        )
        self.job_retries_total = r.counter(
            "repro_job_retries_total",
            "Transient-failure retry attempts",
        )
        self.store_lookups_total = r.counter(
            "repro_service_store_lookups_total",
            "Admission-time result-store lookups",
            ("result",),
        )
        self.store_entries = r.gauge(
            "repro_store_entries",
            "Live result-store entries",
        )
        self.engine_runs_total = r.counter(
            "repro_engine_runs_total",
            "Jobs executed on the shared session (non-deduplicated work)",
        )
        self.process_cpu_seconds = r.gauge(
            "repro_process_cpu_seconds",
            "Process-wide CPU time consumed (time.process_time)",
        )
        self.process_max_rss_bytes = r.gauge(
            "repro_process_max_rss_bytes",
            "Process RSS high-water mark (getrusage ru_maxrss)",
        )

    def update_process(self) -> None:
        """Refresh the process-level gauges (called on every scrape)."""
        usage = process_usage()
        self.process_cpu_seconds.set(round(usage["cpu_seconds"], 6))
        if usage["max_rss_bytes"] is not None:
            self.process_max_rss_bytes.set(usage["max_rss_bytes"])

    def render(self) -> str:
        """The registry's Prometheus text exposition (``GET /metrics``)."""
        self.update_process()
        return self.registry.render()
