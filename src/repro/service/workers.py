"""Async worker pool draining the job queue onto the blocking engine.

Workers are plain asyncio tasks: each one loops ``await queue.get()``,
ships the job's spec to the blocking execution callable (in practice
``Session.run`` on the service's shared session/executor) via
``asyncio.to_thread``, and settles the job.  Concurrency is therefore
``workers`` simultaneous engine runs — the engine's own process pool
parallelizes *within* a run, the service's worker count parallelizes
*across* distinct specs.

Per-job controls:

- **timeout** — ``job.timeout`` (falling back to the pool default)
  bounds one execution attempt via ``asyncio.wait_for``.  A timed-out
  job settles as ``timeout``; the underlying thread cannot be killed
  mid-``Session.run`` and is left to finish into the void (its result
  is discarded), which is the standard asyncio/thread trade-off.
- **retry with backoff** — exceptions matching ``transient`` retry up
  to ``max_retries`` times with exponential backoff
  (``retry_backoff * 2**attempt`` seconds).  Everything else —
  :class:`~repro.api.spec.SpecError`, programming errors — fails the
  job immediately; re-running a deterministic failure cannot fix it.
- **cancellation** — a cancel request against a running job lets the
  attempt finish but discards the outcome and settles the job as
  ``cancelled`` (queued jobs cancel instantly inside the queue).

Every transition emits ``service.job_start`` / ``service.job_retry`` /
``service.job_finish`` telemetry through :func:`repro.obs.emit`.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Callable

from repro.obs import emit

from .queue import (
    CANCELLED,
    FAILED,
    TIMEOUT,
    Job,
    JobQueue,
    QueueClosedError,
)

__all__ = ["WorkerPool"]

_log = logging.getLogger(__name__)


class WorkerPool:
    """``workers`` asyncio tasks executing jobs from a :class:`JobQueue`.

    Parameters
    ----------
    queue:
        The admission queue to drain.
    execute:
        Blocking callable ``execute(job) -> Result`` (run in a thread).
    workers:
        Concurrent job executions.
    job_timeout:
        Default per-attempt timeout in seconds (``None`` = unbounded);
        a job's own ``timeout`` overrides it.
    max_retries:
        Extra attempts allowed after a transient failure.
    retry_backoff:
        Base backoff in seconds (doubles per retry).
    transient:
        Exception types worth retrying.
    on_success:
        Optional hook ``on_success(job, result)`` invoked on the event
        loop before the job resolves (the service stores the result
        here, so waiters can never observe a done-but-unstored job).
    """

    def __init__(
        self,
        queue: JobQueue,
        execute: Callable[[Job], object],
        *,
        workers: int = 2,
        job_timeout: "float | None" = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        transient: "tuple[type[BaseException], ...]" = (ConnectionError, OSError),
        on_success: "Callable[[Job, object], None] | None" = None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._queue = queue
        self._execute = execute
        self.workers = workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.transient = transient
        self._on_success = on_success
        self._tasks: "list[asyncio.Task]" = []
        self.executed = 0  # attempts that ran to completion (any outcome)
        self.active = 0  # jobs currently executing

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._tasks:
            return
        self._tasks = [
            asyncio.get_running_loop().create_task(
                self._worker(i), name=f"repro-service-worker-{i}"
            )
            for i in range(self.workers)
        ]

    async def join(self) -> None:
        """Wait for every worker to exit (after ``queue.close()``)."""
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
            self._tasks = []

    async def abort(self) -> None:
        """Hard-cancel the worker tasks (running jobs settle cancelled)."""
        for task in self._tasks:
            task.cancel()
        await self.join()

    # ------------------------------------------------------------------
    async def _worker(self, index: int) -> None:
        while True:
            try:
                job = await self._queue.get()
            except QueueClosedError:
                return
            try:
                await self._run_job(job)
            finally:
                self._queue.release(job)

    async def _run_job(self, job: Job) -> None:
        # queue.get() already marked the job running.
        self.active += 1
        emit(
            "service.job_start",
            logger=_log,
            level=logging.INFO,
            job=job.id,
            hash=job.hash,
            experiment=job.spec.experiment,
            priority=job.priority,
            submissions=job.submissions,
        )
        timeout = job.timeout if job.timeout is not None else self.job_timeout
        try:
            while True:
                job.attempts += 1
                try:
                    result = await asyncio.wait_for(
                        asyncio.to_thread(self._execute, job), timeout
                    )
                except asyncio.TimeoutError:
                    job.reject(
                        TIMEOUT,
                        f"attempt {job.attempts} exceeded {timeout}s",
                    )
                    break
                except asyncio.CancelledError:
                    job.reject(CANCELLED, "worker cancelled")
                    raise
                except self.transient as exc:
                    if job.attempts <= self.max_retries and not job.cancel_requested:
                        delay = self.retry_backoff * 2 ** (job.attempts - 1)
                        emit(
                            "service.job_retry",
                            logger=_log,
                            level=logging.WARNING,
                            job=job.id,
                            attempt=job.attempts,
                            delay=round(delay, 3),
                            error=repr(exc),
                        )
                        await asyncio.sleep(delay)
                        continue
                    job.reject(FAILED, repr(exc))
                    break
                except BaseException as exc:
                    job.reject(FAILED, repr(exc))
                    break
                else:
                    if job.cancel_requested:
                        job.reject(CANCELLED, "cancelled while running")
                    else:
                        if self._on_success is not None:
                            self._on_success(job, result)
                        job.resolve(result)
                    break
        finally:
            self.active -= 1
            self.executed += 1
            emit(
                "service.job_finish",
                logger=_log,
                level=logging.INFO,
                job=job.id,
                hash=job.hash,
                state=job.state,
                attempts=job.attempts,
                elapsed=(
                    round(job.finished - job.started, 6)
                    if job.finished is not None and job.started is not None
                    else None
                ),
                error=job.error,
            )

    def __repr__(self) -> str:
        return (
            f"WorkerPool(workers={self.workers}, active={self.active}, "
            f"executed={self.executed})"
        )
