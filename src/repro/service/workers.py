"""Async worker pool draining the job queue onto the blocking engine.

Workers are plain asyncio tasks: each one loops ``await queue.get()``,
ships the job's spec to the blocking execution callable (in practice
``Session.run`` on the service's shared session/executor) via
``asyncio.to_thread``, and settles the job.  Concurrency is therefore
``workers`` simultaneous engine runs — the engine's own process pool
parallelizes *within* a run, the service's worker count parallelizes
*across* distinct specs.

Per-job controls:

- **timeout** — ``job.timeout`` (falling back to the pool default)
  bounds one execution attempt via ``asyncio.wait_for``.  A timed-out
  job settles as ``timeout``; the underlying thread cannot be killed
  mid-``Session.run`` and is left to finish into the void (its result
  is discarded), which is the standard asyncio/thread trade-off.
- **retry with backoff** — exceptions matching ``transient`` retry up
  to ``max_retries`` times with exponential backoff
  (``retry_backoff * 2**attempt`` seconds).  Everything else —
  :class:`~repro.api.spec.SpecError`, programming errors — fails the
  job immediately; re-running a deterministic failure cannot fix it.
- **cancellation** — a cancel request against a running job lets the
  attempt finish but discards the outcome and settles the job as
  ``cancelled`` (queued jobs cancel instantly inside the queue).

Every transition emits ``service.job_start`` / ``service.job_retry`` /
``service.job_finish`` telemetry through :func:`repro.obs.emit`.

Observability: claiming a job records its ``queue.wait`` span (from the
admission timestamp) and the whole execution runs inside a
``worker.run`` span.  The span is the ambient one for the worker
coroutine, so it crosses ``asyncio.to_thread`` into ``Session.run``
(which opens ``engine.execute`` as a child) and covers the
``on_success`` hook (the service's ``store.write`` span nests under
it).  When the pool is given
:class:`~repro.service.instruments.ServiceInstruments`, outcome
counters, latency/phase histograms, retry counts and worker-utilization
gauges are updated at the same transitions.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import TYPE_CHECKING, Callable

from repro.obs import emit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .instruments import ServiceInstruments

from .queue import (
    CANCELLED,
    FAILED,
    TIMEOUT,
    Job,
    JobQueue,
    QueueClosedError,
)

__all__ = ["WorkerPool"]

_log = logging.getLogger(__name__)


class WorkerPool:
    """``workers`` asyncio tasks executing jobs from a :class:`JobQueue`.

    Parameters
    ----------
    queue:
        The admission queue to drain.
    execute:
        Blocking callable ``execute(job) -> Result`` (run in a thread).
    workers:
        Concurrent job executions.
    job_timeout:
        Default per-attempt timeout in seconds (``None`` = unbounded);
        a job's own ``timeout`` overrides it.
    max_retries:
        Extra attempts allowed after a transient failure.
    retry_backoff:
        Base backoff in seconds (doubles per retry).
    transient:
        Exception types worth retrying.
    on_success:
        Optional hook ``on_success(job, result)`` invoked on the event
        loop before the job resolves (the service stores the result
        here, so waiters can never observe a done-but-unstored job).
    on_finish:
        Optional hook ``on_finish(job)`` invoked on the event loop after
        the job settles in *any* terminal state (the service persists
        the job's trace here).  A raising hook is logged, not fatal.
    instruments:
        Optional :class:`~repro.service.instruments.ServiceInstruments`
        receiving outcome/latency/utilization updates.
    """

    def __init__(
        self,
        queue: JobQueue,
        execute: Callable[[Job], object],
        *,
        workers: int = 2,
        job_timeout: "float | None" = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        transient: "tuple[type[BaseException], ...]" = (ConnectionError, OSError),
        on_success: "Callable[[Job, object], None] | None" = None,
        on_finish: "Callable[[Job], None] | None" = None,
        instruments: "ServiceInstruments | None" = None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._queue = queue
        self._execute = execute
        self.workers = workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.transient = transient
        self._on_success = on_success
        self._on_finish = on_finish
        self._instruments = instruments
        if instruments is not None:
            instruments.workers_total.set(workers)
        self._tasks: "list[asyncio.Task]" = []
        self.executed = 0  # attempts that ran to completion (any outcome)
        self.active = 0  # jobs currently executing

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._tasks:
            return
        self._tasks = [
            asyncio.get_running_loop().create_task(
                self._worker(i), name=f"repro-service-worker-{i}"
            )
            for i in range(self.workers)
        ]

    async def join(self) -> None:
        """Wait for every worker to exit (after ``queue.close()``)."""
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
            self._tasks = []

    async def abort(self) -> None:
        """Hard-cancel the worker tasks (running jobs settle cancelled)."""
        for task in self._tasks:
            task.cancel()
        await self.join()

    # ------------------------------------------------------------------
    async def _worker(self, index: int) -> None:
        while True:
            try:
                job = await self._queue.get()
            except QueueClosedError:
                return
            try:
                await self._run_job(job)
            finally:
                self._queue.release(job)

    #: Job terminal states → ``repro_jobs_total`` outcome labels.
    _OUTCOMES = {
        "done": "ok",
        "failed": "error",
        "timeout": "timeout",
        "cancelled": "cancelled",
    }

    async def _run_job(self, job: Job) -> None:
        # queue.get() already marked the job running.
        self.active += 1
        ins = self._instruments
        if job.started is not None:
            # The admission-to-claim interval, observed after the fact.
            wait = max(job.started - job.created, 0.0)
            job.trace.add_span(
                "queue.wait",
                start=job.created,
                end=job.started,
                priority=job.priority,
            )
            if ins is not None:
                ins.queue_wait_seconds.observe(wait)
                ins.job_phase_seconds.labels(phase="queue.wait").observe(wait)
                ins.queue_depth.set(self._queue.depth)
        if ins is not None:
            ins.workers_busy.inc()
        emit(
            "service.job_start",
            logger=_log,
            level=logging.INFO,
            job=job.id,
            hash=job.hash,
            experiment=job.spec.experiment,
            priority=job.priority,
            submissions=job.submissions,
        )
        timeout = job.timeout if job.timeout is not None else self.job_timeout
        claimed = time.monotonic()
        try:
            # worker.run is the ambient span for everything this job
            # does from here: Session.run's engine.execute child (via
            # the to_thread context copy) and the on_success hook both
            # nest under it.
            with job.trace.span(
                "worker.run",
                job=job.id,
                experiment=job.spec.experiment,
                submissions=job.submissions,
            ) as span:
                while True:
                    job.attempts += 1
                    try:
                        result = await asyncio.wait_for(
                            asyncio.to_thread(self._execute, job), timeout
                        )
                    except asyncio.TimeoutError:
                        job.reject(
                            TIMEOUT,
                            f"attempt {job.attempts} exceeded {timeout}s",
                        )
                        break
                    except asyncio.CancelledError:
                        job.reject(CANCELLED, "worker cancelled")
                        raise
                    except self.transient as exc:
                        if job.attempts <= self.max_retries and not job.cancel_requested:
                            delay = self.retry_backoff * 2 ** (job.attempts - 1)
                            emit(
                                "service.job_retry",
                                logger=_log,
                                level=logging.WARNING,
                                job=job.id,
                                attempt=job.attempts,
                                delay=round(delay, 3),
                                error=repr(exc),
                            )
                            span.add_event(
                                "retry", attempt=job.attempts, error=repr(exc)
                            )
                            if ins is not None:
                                ins.job_retries_total.inc()
                            await asyncio.sleep(delay)
                            continue
                        job.reject(FAILED, repr(exc))
                        break
                    except BaseException as exc:
                        job.reject(FAILED, repr(exc))
                        break
                    else:
                        if job.cancel_requested:
                            job.reject(CANCELLED, "cancelled while running")
                        else:
                            if self._on_success is not None:
                                self._on_success(job, result)
                            job.resolve(result)
                        break
                span.set(state=job.state, attempts=job.attempts)
        finally:
            self.active -= 1
            self.executed += 1
            elapsed = (
                round(job.finished - job.started, 6)
                if job.finished is not None and job.started is not None
                else None
            )
            if ins is not None:
                ins.workers_busy.dec()
                ins.worker_busy_seconds_total.inc(time.monotonic() - claimed)
                ins.jobs_total.labels(
                    outcome=self._OUTCOMES.get(job.state, job.state)
                ).inc()
                if elapsed is not None:
                    ins.job_phase_seconds.labels(phase="worker.run").observe(elapsed)
                if job.finished is not None:
                    ins.job_latency_seconds.labels(
                        experiment=job.spec.experiment
                    ).observe(job.finished - job.created)
            emit(
                "service.job_finish",
                logger=_log,
                level=logging.INFO,
                job=job.id,
                hash=job.hash,
                state=job.state,
                attempts=job.attempts,
                elapsed=elapsed,
                error=job.error,
            )
            if self._on_finish is not None:
                try:
                    self._on_finish(job)
                except Exception:
                    _log.warning(
                        "on_finish hook raised for job %s", job.id, exc_info=True
                    )

    def __repr__(self) -> str:
        return (
            f"WorkerPool(workers={self.workers}, active={self.active}, "
            f"executed={self.executed})"
        )
