"""Priority job queue with single-flight dedup by spec content hash.

The queue is the service's admission layer.  Three properties matter:

**Single-flight dedup.**  Jobs are keyed by
:meth:`~repro.api.spec.ExperimentSpec.content_hash`.  While a job for a
given hash is *in flight* (queued or running), every further submission
of an equal spec attaches to that job instead of enqueuing new work —
:meth:`JobQueue.submit` returns the existing :class:`Job` with
``deduped=True`` and all attached waiters resolve with the same
:class:`~repro.api.result.Result` the single execution produced.  The
hash covers the full spec identity (experiment, backend, trials, seed,
confidence, params) and nothing else — telemetry, submission time and
priority deliberately stay out of it, so observationally different but
semantically equal submissions coalesce.

**Priorities.**  Higher ``priority`` integers run first; ties run in
submission order.  A coalesced submission may *raise* the in-flight
job's priority (never lower it) while the job is still queued.

**Bounded capacity.**  ``capacity`` bounds the number of *queued* jobs
(running jobs have already left the queue).  A genuinely new submission
against a full queue raises :class:`QueueFullError` — the HTTP layer
maps it to 429 — while coalescing submissions always succeed (they add
no work).

The queue is purely asyncio-native: every method must be called from
the event-loop thread, so no locks are needed; :meth:`get` is the only
awaitable and parks workers on a condition until work (or shutdown)
arrives.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from typing import TYPE_CHECKING, Optional

from repro.obs.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.result import Result
    from repro.api.spec import ExperimentSpec

__all__ = [
    "Job",
    "JobQueue",
    "QueueClosedError",
    "QueueFullError",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "TIMEOUT",
    "CANCELLED",
    "TERMINAL_STATES",
]

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, TIMEOUT, CANCELLED})


class QueueFullError(RuntimeError):
    """A new (non-coalescing) submission hit the queue's capacity bound."""


class QueueClosedError(RuntimeError):
    """The queue is closed (and drained); workers should exit."""


class Job:
    """One unit of service work: a spec, its lifecycle, and its outcome.

    A job is created once per *distinct in-flight spec*; coalesced
    submissions share the instance (``submissions`` counts them).  Any
    number of tasks may :meth:`wait` on the same job; they all wake when
    it reaches a terminal state.
    """

    __slots__ = (
        "id",
        "spec",
        "hash",
        "priority",
        "timeout",
        "state",
        "created",
        "started",
        "finished",
        "attempts",
        "submissions",
        "error",
        "result",
        "from_store",
        "cancel_requested",
        "trace",
        "_done",
    )

    def __init__(
        self,
        job_id: str,
        spec: "ExperimentSpec",
        *,
        priority: int = 0,
        timeout: "float | None" = None,
    ):
        self.id = job_id
        self.spec = spec
        self.hash = spec.content_hash()
        self.priority = int(priority)
        self.timeout = timeout
        self.state = QUEUED
        self.created = time.time()
        self.started: "float | None" = None
        self.finished: "float | None" = None
        self.attempts = 0
        self.submissions = 1
        self.error: "str | None" = None
        self.result: "Result | None" = None
        self.from_store = False
        self.cancel_requested = False
        # Every job carries its own trace from birth; spans are added
        # by whoever touches the job (service admit, worker, engine).
        self.trace = Trace(name=spec.experiment)
        self._done = asyncio.Event()

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    async def wait(self, timeout: "float | None" = None) -> bool:
        """Block until the job reaches a terminal state.

        Returns ``True`` when terminal, ``False`` on wait timeout (the
        job keeps running either way).
        """
        if self.done:
            return True
        try:
            await asyncio.wait_for(self._done.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    # ------------------------------------------------------------------
    def mark_running(self) -> None:
        self.state = RUNNING
        self.started = time.time()

    def resolve(self, result: "Result") -> None:
        """Terminal success: attach the result and wake every waiter."""
        if self.done:  # settle exactly once
            return
        self.result = result
        self._finish(DONE)

    def reject(self, state: str, error: str) -> None:
        """Terminal failure (``failed``/``timeout``/``cancelled``)."""
        if state not in TERMINAL_STATES or state == DONE:
            raise ValueError(f"not a failure state: {state!r}")
        if self.done:
            return
        self.error = error
        self._finish(state)

    def _finish(self, state: str) -> None:
        self.state = state
        self.finished = time.time()
        self._done.set()

    # ------------------------------------------------------------------
    def to_payload(self, *, include_result: bool = True) -> dict:
        """JSON-pure job status (the ``GET /jobs/{id}`` body)."""
        payload = {
            "id": self.id,
            "state": self.state,
            "hash": self.hash,
            "spec": self.spec.to_key(),
            "priority": self.priority,
            "timeout": self.timeout,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "submissions": self.submissions,
            "from_store": self.from_store,
            "error": self.error,
            "trace_id": self.trace.trace_id,
        }
        if include_result and self.result is not None:
            import json

            payload["result"] = json.loads(self.result.to_json())
        return payload

    def __repr__(self) -> str:
        return (
            f"Job({self.id!r}, {self.spec.experiment!r}, state={self.state!r}, "
            f"hash={self.hash[:12]}…, priority={self.priority})"
        )


class JobQueue:
    """Bounded, priority-ordered, deduplicating admission queue."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._heap: "list[tuple[int, int, Job]]" = []
        self._tick = itertools.count()
        self._ids = itertools.count(1)
        self._inflight: "dict[str, Job]" = {}
        self._queued = 0
        self._closed = False
        self._wakeup = asyncio.Event()
        self.submitted = 0
        self.coalesced = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of queued (not yet running) jobs."""
        return self._queued

    @property
    def closed(self) -> bool:
        return self._closed

    def inflight(self, spec_hash: str) -> "Optional[Job]":
        """The queued-or-running job for ``spec_hash``, if any."""
        return self._inflight.get(spec_hash)

    # ------------------------------------------------------------------
    def submit(
        self,
        spec: "ExperimentSpec",
        *,
        priority: int = 0,
        timeout: "float | None" = None,
    ) -> "tuple[Job, bool]":
        """Admit one submission; returns ``(job, deduped)``.

        An equal spec already in flight coalesces onto the existing job
        (its priority is raised to ``max`` of the two while still
        queued); otherwise a new job is enqueued, subject to the
        capacity bound.
        """
        if self._closed:
            raise QueueClosedError("queue is closed to new submissions")
        self.submitted += 1
        spec_hash = spec.content_hash()
        existing = self._inflight.get(spec_hash)
        if existing is not None:
            self.coalesced += 1
            existing.submissions += 1
            if existing.state == QUEUED and priority > existing.priority:
                # Re-push under the stronger priority; the stale heap
                # entry is skipped on pop (the job is only handed out
                # while still QUEUED, and popping flips it out of the
                # heap's view via _inflight bookkeeping).
                existing.priority = priority
                heapq.heappush(
                    self._heap, (-priority, next(self._tick), existing)
                )
            return existing, True
        if self._queued >= self.capacity:
            raise QueueFullError(
                f"queue full ({self._queued}/{self.capacity} jobs queued)"
            )
        job = Job(
            f"j{next(self._ids):06d}", spec, priority=priority, timeout=timeout
        )
        self._inflight[spec_hash] = job
        heapq.heappush(self._heap, (-job.priority, next(self._tick), job))
        self._queued += 1
        self._wakeup.set()
        return job, False

    async def get(self) -> Job:
        """Pop the highest-priority queued job (blocks until one exists).

        The returned job is already marked ``running`` — claiming it
        atomically with the pop is what makes a priority-raise's twin
        heap entry harmless (the state check skips it).  Raises
        :class:`QueueClosedError` once the queue is closed *and*
        drained, so workers naturally exit after finishing the backlog.
        """
        while True:
            job = self._pop()
            if job is not None:
                return job
            if self._closed:
                raise QueueClosedError("queue closed and drained")
            self._wakeup.clear()
            await self._wakeup.wait()

    def _pop(self) -> "Optional[Job]":
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state != QUEUED:
                continue  # cancelled, or a stale twin from a priority raise
            self._queued -= 1
            job.mark_running()
            return job
        return None

    def release(self, job: Job) -> None:
        """Detach a terminal job from the single-flight index.

        Called by the worker pool once the job settles; *after* this, a
        new submission of the same spec starts fresh work (or hits the
        result store).
        """
        if self._inflight.get(job.hash) is job:
            del self._inflight[job.hash]

    def cancel(self, job: Job) -> bool:
        """Cancel a queued job (running jobs only get a cancel request).

        Returns ``True`` when the job was still queued and is now
        terminally ``cancelled``; ``False`` for running jobs, where the
        request is recorded and the worker discards the outcome.
        """
        if job.state == QUEUED:
            job.reject(CANCELLED, "cancelled while queued")
            self._queued -= 1
            self.release(job)
            return True
        job.cancel_requested = True
        return False

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse new submissions; queued work remains drainable."""
        self._closed = True
        self._wakeup.set()

    def cancel_pending(self) -> int:
        """Cancel every still-queued job (fast shutdown); returns count."""
        cancelled = 0
        for _, _, job in list(self._heap):
            if job.state == QUEUED and self.cancel(job):
                cancelled += 1
        return cancelled

    def __len__(self) -> int:
        return self._queued

    def __repr__(self) -> str:
        return (
            f"JobQueue(depth={self._queued}/{self.capacity}, "
            f"inflight={len(self._inflight)}, "
            f"{'closed' if self._closed else 'open'})"
        )
