"""Async experiment service: dedup job queue, TTL'd result store, HTTP API.

``repro.service`` turns the blocking ``Session.run()`` library into a
long-running system: thousands of concurrent spec submissions flow
through a priority queue that **coalesces duplicate work in flight**
(single-flight dedup keyed on
:meth:`~repro.api.spec.ExperimentSpec.content_hash`), an asyncio worker
pool drains the queue onto one shared
:class:`~repro.api.session.Session` (one warm
:class:`~repro.engine.executor.SharedExecutor`, one engine cache), and
completed results are served from a TTL'd
:class:`~repro.service.store.ResultStore` without re-running anything.

Layers (stdlib-only — asyncio streams, ``http.client``, ``json``):

- :mod:`~repro.service.queue` — :class:`JobQueue`/:class:`Job`:
  priorities, bounded capacity, single-flight dedup.
- :mod:`~repro.service.workers` — :class:`WorkerPool`: ``to_thread``
  execution with per-job timeout, bounded retry-with-backoff,
  cancellation.
- :mod:`~repro.service.store` — :class:`ResultStore`: TTL/eviction,
  hit/miss/coalesce counters, lossless Result JSON round-trip,
  optional disk mirror, engine-cache co-pruning.
- :mod:`~repro.service.app` — :class:`ExperimentService`: the control
  plane gluing the three together (``submit`` → store hit | coalesce |
  queue) plus ``stats``/``healthz``.
- :mod:`~repro.service.instruments` — :class:`ServiceInstruments`: the
  service's metric families (outcome counters, latency/queue-wait
  histograms, worker-utilization gauges) on a
  :class:`~repro.obs.metrics.MetricsRegistry`; every job also carries a
  :class:`~repro.obs.trace.Trace` whose spans
  (``admit``/``queue.wait``/``worker.run``/``engine.execute``/
  ``store.write``) follow it through the stack.
- :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  HTTP+JSON API (``POST /jobs``, ``GET /jobs/{id}``,
  ``GET /jobs/{id}/trace``, ``GET /results/{hash}``, ``GET /healthz``,
  ``GET /stats``, ``GET /metrics``) and its blocking client.
- :mod:`~repro.service.runner` — :func:`serve_forever`, the
  ``python -m repro serve`` core with graceful SIGINT/SIGTERM drain.

Quickstart::

    # terminal 1
    python -m repro serve --port 8765 --workers 4 --ttl 3600

    # terminal 2 (or any script)
    from repro.service import ServiceClient
    client = ServiceClient(port=8765)
    job = client.run("fig3.coverage", trials=4096, seed=2007)
    print(job["result"]["data"]["coverage"])
"""

from .app import ExperimentService
from .client import JobFailedError, ServiceClient, ServiceError
from .instruments import ServiceInstruments
from .queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TIMEOUT,
    Job,
    JobQueue,
    QueueClosedError,
    QueueFullError,
)
from .runner import serve_forever
from .server import ServiceServer
from .store import ResultStore
from .workers import WorkerPool

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "TIMEOUT",
    "ExperimentService",
    "Job",
    "JobFailedError",
    "JobQueue",
    "QueueClosedError",
    "QueueFullError",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "ServiceInstruments",
    "ServiceServer",
    "WorkerPool",
    "serve_forever",
]
