"""HTTP+JSON front end over asyncio streams (stdlib only).

A deliberately small HTTP/1.1 server — request line, headers,
``Content-Length`` body, JSON in, JSON out, ``Connection: close`` — on
:func:`asyncio.start_server`.  No routing framework, no threads: every
handler is a plain coroutine against the
:class:`~repro.service.app.ExperimentService` control plane.

Routes
------
``POST /jobs``
    Body ``{"spec": {...}, "priority": 0, "timeout": null}`` where
    ``spec`` is an :meth:`ExperimentSpec.to_key` mapping (flat
    ``{"experiment": ...}`` bodies are accepted too).  Responses:
    ``201`` new job queued, ``200`` coalesced onto an in-flight job or
    served from the store (``via`` says which), ``400`` malformed
    spec/unknown experiment, ``429`` queue full.
``GET /jobs/{id}``
    Job status (result inlined once done).  ``?wait=SECONDS`` long-polls
    until the job settles or the wait elapses (capped at 60s).
``DELETE /jobs/{id}``
    Cancel: ``200`` cancelled while queued, ``409`` already
    running/terminal (a running job gets a discard-on-finish request),
    ``404`` unknown.
``GET /results/{hash}``
    The completed :class:`Result` JSON for a spec content hash straight
    from the store (``404`` on miss/expired).
``GET /healthz`` / ``GET /stats``
    Liveness and the service's counters digest.
``GET /metrics``
    The service's metrics registry in Prometheus text exposition format
    (the one non-JSON route; disabled with ``expose_metrics=False`` /
    ``serve --no-metrics``).
``GET /jobs/{id}/trace``
    The job's trace export: span JSON plus a Chrome ``traceEvents``
    array in one payload.
``GET /jobs/{id}/profile``
    The job's profile payload (sampled stacks, memory watermarks,
    process deltas) when the service runs with ``--profile-dir``;
    ``404`` for unknown jobs or unprofiled runs.
``GET /debug/profile?seconds=N``
    On-demand whole-process sampling: run the sampling profiler for
    ``seconds`` (default 1, capped at 30; ``hz`` picks the rate) and
    return the profile.  The sampler runs on its own thread, so the
    event loop keeps serving while it collects.
"""

from __future__ import annotations

import asyncio
import json
import logging
from urllib.parse import parse_qs, urlsplit

from repro.api.registry import UnknownExperimentError
from repro.api.spec import ExperimentSpec, SpecError

from .app import ExperimentService
from .queue import QueueClosedError, QueueFullError

__all__ = ["ServiceServer"]

_log = logging.getLogger(__name__)

_MAX_BODY = 1 << 20  # 1 MiB: specs are small; refuse anything bigger
_MAX_WAIT = 60.0  # long-poll cap per request
_MAX_PROFILE_SECONDS = 30.0  # /debug/profile duration cap per request

#: Prometheus text exposition format version 0.0.4.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceServer:
    """Bind an :class:`ExperimentService` to a host/port."""

    def __init__(
        self,
        service: ExperimentService,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        expose_metrics: bool = True,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.expose_metrics = expose_metrics
        self._server: "asyncio.base_events.Server | None" = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start listening (``port=0`` picks a free port, readable back
        from :attr:`port` afterwards)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info("service listening on %s:%d", self.host, self.port)

    async def stop(self) -> None:
        """Stop accepting connections (in-flight handlers finish)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def serving(self) -> bool:
        return self._server is not None

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        content_type = "application/json"
        try:
            response = await self._handle_request(reader)
            # Handlers return (status, payload) or, for the one
            # non-JSON route, (status, payload, content_type).
            if len(response) == 3:
                status, payload, content_type = response
            else:
                status, payload = response
        except _HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
        except Exception as exc:  # a handler bug must not kill the server
            _log.exception("unhandled service error")
            status, payload = 500, {"error": repr(exc)}
        try:
            body = (
                payload
                if isinstance(payload, (bytes, bytearray))
                else json.dumps(payload).encode("utf-8")
            )
            writer.write(
                (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("ascii")
                + body
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-response
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> "tuple[int, object]":
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError) as exc:
            raise _HttpError(400, "malformed or incomplete request") from exc
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(413, "request head too large") from exc
        request_line, _, header_block = head.partition(b"\r\n")
        try:
            method, target, _ = request_line.decode("ascii").split(" ", 2)
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, "malformed request line") from exc
        headers = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        if method == "POST":
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError as exc:
                raise _HttpError(400, "bad Content-Length") from exc
            if length > _MAX_BODY:
                raise _HttpError(413, f"body exceeds {_MAX_BODY} bytes")
            if length:
                try:
                    body = await asyncio.wait_for(
                        reader.readexactly(length), timeout=30.0
                    )
                except (asyncio.IncompleteReadError, asyncio.TimeoutError) as exc:
                    raise _HttpError(400, "truncated request body") from exc
        url = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        return await self._route(method, url.path.rstrip("/") or "/", query, body)

    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, query: dict, body: bytes
    ) -> "tuple[int, object]":
        if path == "/jobs" and method == "POST":
            return self._post_job(body)
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            if job_id.endswith("/trace"):
                if method != "GET":
                    raise _HttpError(405, f"{method} not allowed on {path}")
                return self._get_trace(job_id[: -len("/trace")])
            if job_id.endswith("/profile"):
                if method != "GET":
                    raise _HttpError(405, f"{method} not allowed on {path}")
                return self._get_profile(job_id[: -len("/profile")])
            if method == "GET":
                return await self._get_job(job_id, query)
            if method == "DELETE":
                return self._delete_job(job_id)
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/results/") and method == "GET":
            return self._get_result(path[len("/results/"):])
        if path == "/healthz" and method == "GET":
            return 200, self.service.healthz()
        if path == "/stats" and method == "GET":
            return 200, self.service.stats()
        if path == "/debug/profile" and method == "GET":
            return await self._debug_profile(query)
        if path == "/metrics" and method == "GET":
            if not self.expose_metrics:
                raise _HttpError(404, "metrics exposition is disabled")
            return (
                200,
                self.service.metrics_text().encode("utf-8"),
                _METRICS_CONTENT_TYPE,
            )
        raise _HttpError(404, f"no route for {method} {path}")

    def _post_job(self, body: bytes) -> "tuple[int, object]":
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "body must be a JSON object")
        raw_spec = payload.get("spec", payload)
        if not isinstance(raw_spec, dict) or "experiment" not in raw_spec:
            raise _HttpError(
                400, 'body needs a "spec" object with an "experiment" name'
            )
        try:
            spec = ExperimentSpec.from_key(raw_spec)
        except (SpecError, KeyError, TypeError) as exc:
            raise _HttpError(400, f"bad spec: {exc}") from exc
        priority = payload.get("priority", 0)
        timeout = payload.get("timeout")
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise _HttpError(400, "priority must be an integer")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise _HttpError(400, "timeout must be a number or null")
        try:
            job, via = self.service.submit(
                spec, priority=priority, timeout=timeout
            )
        except UnknownExperimentError as exc:
            raise _HttpError(400, str(exc)) from exc
        except SpecError as exc:
            raise _HttpError(400, f"bad spec: {exc}") from exc
        except QueueFullError as exc:
            raise _HttpError(429, str(exc)) from exc
        except QueueClosedError as exc:
            raise _HttpError(503, str(exc)) from exc
        status = 201 if via == "queued" else 200
        return status, {"via": via, "job": job.to_payload(include_result=False)}

    async def _get_job(self, job_id: str, query: dict) -> "tuple[int, object]":
        job = self.service.job(job_id)
        if job is None:
            raise _HttpError(404, f"no job {job_id!r}")
        wait = query.get("wait")
        if wait is not None and not job.done:
            try:
                seconds = min(float(wait), _MAX_WAIT)
            except ValueError as exc:
                raise _HttpError(400, "wait must be a number of seconds") from exc
            await job.wait(timeout=max(seconds, 0.0))
        return 200, job.to_payload()

    def _delete_job(self, job_id: str) -> "tuple[int, object]":
        verdict = self.service.cancel(job_id)
        if verdict is None:
            raise _HttpError(404, f"no job {job_id!r}")
        job = self.service.job(job_id)
        payload = {"cancelled": verdict, "job": job.to_payload(include_result=False)}
        return (200 if verdict else 409), payload

    def _get_trace(self, job_id: str) -> "tuple[int, object]":
        job = self.service.job(job_id)
        if job is None:
            raise _HttpError(404, f"no job {job_id!r}")
        return 200, job.trace.export()

    def _get_profile(self, job_id: str) -> "tuple[int, object]":
        job = self.service.job(job_id)
        if job is None:
            raise _HttpError(404, f"no job {job_id!r}")
        profile = self.service.job_profile(job_id)
        if profile is None:
            raise _HttpError(
                404,
                f"job {job_id!r} has no profile (service not started with "
                "--profile-dir, or the job has not settled)",
            )
        return 200, profile

    async def _debug_profile(self, query: dict) -> "tuple[int, object]":
        from repro.obs.profile import DEFAULT_HZ, SamplingProfiler

        try:
            seconds = float(query.get("seconds", 1.0))
            hz = float(query.get("hz", DEFAULT_HZ))
        except ValueError as exc:
            raise _HttpError(400, "seconds and hz must be numbers") from exc
        if seconds < 0 or hz <= 0:
            raise _HttpError(400, "seconds must be >= 0 and hz > 0")
        seconds = min(seconds, _MAX_PROFILE_SECONDS)
        profiler = SamplingProfiler(hz)
        profiler.start()
        try:
            # The sampler collects on its own thread; the loop stays
            # free to serve other requests for the whole window.
            await asyncio.sleep(seconds)
        finally:
            profiler.stop()
        return 200, {"seconds": seconds, **profiler.to_dict()}

    def _get_result(self, spec_hash: str) -> "tuple[int, object]":
        text = self.service.store.get_json(spec_hash)
        if text is None:
            raise _HttpError(404, f"no stored result for {spec_hash!r}")
        return 200, text.encode("utf-8")
