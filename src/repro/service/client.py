"""Thin blocking client for the experiment service (stdlib only).

Built on :mod:`http.client`; one connection per request (the server
closes connections after each response), so a client instance is cheap,
stateless and safe to share across threads.  Used by the test suite,
the CI smoke step, and anyone driving a service from scripts::

    from repro.api import ExperimentSpec
    from repro.service import ServiceClient

    client = ServiceClient(port=8765)
    submitted = client.submit(
        ExperimentSpec("fig3.coverage", trials=4096, seed=2007)
    )
    job = client.wait(submitted["job"]["id"])
    result = client.result(job["hash"])          # full Result JSON
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Mapping

from repro.api.spec import ExperimentSpec

__all__ = ["ServiceClient", "ServiceError", "JobFailedError"]


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, message: str, payload: "dict | None" = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.payload = payload or {}


class JobFailedError(ServiceError):
    """A waited-on job settled in a non-``done`` terminal state."""

    def __init__(self, job: dict):
        super().__init__(
            200,
            f"job {job.get('id')} ended {job.get('state')}: {job.get('error')}",
            job,
        )
        self.job = job


class ServiceClient:
    """Blocking JSON client for one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: "Mapping | None" = None,
        *,
        timeout: "float | None" = None,
    ) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
        finally:
            connection.close()
        try:
            data = json.loads(text) if text else {}
        except json.JSONDecodeError:
            data = {"error": text}
        if response.status >= 400:
            raise ServiceError(
                response.status, data.get("error", text), data
            )
        return data

    # ------------------------------------------------------------------
    def submit(
        self,
        spec: "ExperimentSpec | Mapping | str",
        *,
        priority: int = 0,
        timeout: "float | None" = None,
        **overrides: Any,
    ) -> dict:
        """``POST /jobs``; returns ``{"via": ..., "job": {...}}``.

        ``spec`` may be an :class:`ExperimentSpec`, a ``to_key()``-style
        mapping, or just an experiment name (with spec fields as
        keyword overrides, e.g. ``submit("fig3.coverage",
        trials=4096, seed=2007)``).
        """
        if isinstance(spec, str):
            spec = ExperimentSpec(spec, **overrides)
        elif overrides:
            raise TypeError("spec overrides only apply to name submissions")
        key = spec.to_key() if isinstance(spec, ExperimentSpec) else dict(spec)
        body: "dict[str, Any]" = {"spec": key, "priority": priority}
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "/jobs", body)

    def job(self, job_id: str, *, wait: "float | None" = None) -> dict:
        """``GET /jobs/{id}`` (``wait`` long-polls server-side)."""
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait}"
            return self._request(
                "GET", path, timeout=max(self.timeout, wait + 10.0)
            )
        return self._request("GET", path)

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        poll: float = 5.0,
        raise_on_failure: bool = True,
    ) -> dict:
        """Block until the job settles; returns its final payload.

        Uses server-side long-polling in ``poll``-second slices up to
        ``timeout`` total.  A job that settles anywhere other than
        ``done`` raises :class:`JobFailedError` (unless disabled).
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still not terminal after {timeout}s"
                )
            payload = self.job(job_id, wait=min(poll, remaining))
            if payload.get("finished") is not None or payload.get("state") in (
                "done",
                "failed",
                "timeout",
                "cancelled",
            ):
                if raise_on_failure and payload.get("state") != "done":
                    raise JobFailedError(payload)
                return payload

    def run(
        self,
        spec: "ExperimentSpec | Mapping | str",
        *,
        priority: int = 0,
        timeout: float = 120.0,
        **overrides: Any,
    ) -> dict:
        """Submit and wait; returns the completed job payload (with the
        result inlined) — the one-call blocking convenience."""
        submitted = self.submit(spec, priority=priority, **overrides)
        job = submitted["job"]
        if job.get("state") == "done":
            return self.job(job["id"])  # store hit: fetch result inline
        return self.wait(job["id"], timeout=timeout)

    def result(self, spec_or_hash: "ExperimentSpec | str") -> dict:
        """``GET /results/{hash}``: the stored Result JSON payload."""
        spec_hash = (
            spec_or_hash.content_hash()
            if isinstance(spec_or_hash, ExperimentSpec)
            else spec_or_hash
        )
        return self._request("GET", f"/results/{spec_hash}")

    def cancel(self, job_id: str) -> dict:
        """``DELETE /jobs/{id}`` (409 raises :class:`ServiceError`)."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def trace(self, job_id: str) -> dict:
        """``GET /jobs/{id}/trace``: the job's trace export (span JSON
        plus a Chrome ``traceEvents`` array)."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def profile(self, job_id: str) -> dict:
        """``GET /jobs/{id}/profile``: the job's profile payload (404
        raises :class:`ServiceError` when the service runs without
        ``--profile-dir`` or the job has not settled)."""
        return self._request("GET", f"/jobs/{job_id}/profile")

    def debug_profile(
        self, *, seconds: float = 1.0, hz: "float | None" = None
    ) -> dict:
        """``GET /debug/profile``: sample the service process for
        ``seconds`` and return the collapsed-stack profile."""
        path = f"/debug/profile?seconds={seconds}"
        if hz is not None:
            path += f"&hz={hz}"
        return self._request(
            "GET", path, timeout=max(self.timeout, seconds + 10.0)
        )

    def metrics(self) -> str:
        """``GET /metrics``: the raw Prometheus text exposition (parse
        with :func:`repro.obs.metrics.parse_exposition`)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            text = response.read().decode("utf-8")
        finally:
            connection.close()
        if response.status >= 400:
            raise ServiceError(response.status, text)
        return text

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def wait_ready(self, *, timeout: float = 10.0, poll: float = 0.1) -> dict:
        """Poll ``/healthz`` until the service answers (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)
