"""Process-level service runner: build, bind, serve, drain, exit.

:func:`serve_forever` is what ``python -m repro serve`` executes: it
starts an :class:`~repro.service.app.ExperimentService` and a
:class:`~repro.service.server.ServiceServer`, installs SIGINT/SIGTERM
handlers, and on the first signal performs a **graceful** shutdown —
stop accepting connections, close the queue to new submissions, let
the workers drain everything already admitted, then release the shared
executor.  A second signal escalates to a fast shutdown (queued jobs
are cancelled; only running ones are awaited).
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import signal
from typing import Callable

from .app import ExperimentService
from .server import ServiceServer

__all__ = ["serve_forever"]

_log = logging.getLogger(__name__)


async def serve_forever(
    service: ExperimentService,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    expose_metrics: bool = True,
    on_ready: "Callable[[ServiceServer], None] | None" = None,
    shutdown: "asyncio.Event | None" = None,
) -> ServiceServer:
    """Run the service until SIGINT/SIGTERM (or ``shutdown`` is set).

    ``on_ready`` fires once the socket is bound (with the resolved
    port — useful with ``port=0``); ``shutdown`` lets embedders and
    tests request the same graceful path a signal takes.  Returns the
    (stopped) server for inspection.
    """
    stop_event = shutdown or asyncio.Event()
    drain = True

    def _on_signal(signame: str) -> None:
        nonlocal drain
        if stop_event.is_set():
            # Second signal: the operator means it — drop queued work
            # immediately (works even while stop() is already draining).
            drain = False
            cancelled = service.queue.cancel_pending()
            _log.warning(
                "second %s: fast shutdown, cancelled %d queued jobs",
                signame,
                cancelled,
            )
            return
        _log.info("%s: graceful shutdown (draining in-flight jobs)", signame)
        stop_event.set()

    loop = asyncio.get_running_loop()
    installed = []
    for signame in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, signame)
        try:
            loop.add_signal_handler(signum, _on_signal, signame)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            continue  # non-main thread / platforms without loop signals
        installed.append(signum)

    server = ServiceServer(service, host, port, expose_metrics=expose_metrics)
    await service.start()
    try:
        await server.start()
        if on_ready is not None:
            on_ready(server)
        await stop_event.wait()
        # One wakeup tick: a second signal arriving while we drain still
        # flips `drain` before the queue empties, because stop() yields
        # control whenever workers await.
    finally:
        with contextlib.suppress(Exception):
            await server.stop()
        await service.stop(drain=drain)
        for signum in installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(signum)
    return server
