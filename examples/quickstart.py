"""Quickstart: run a paper experiment through the unified API, then watch
a 2D-protected SRAM bank survive a 32x32-bit clustered error bit by bit.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import ExperimentSpec, Session
from repro.core import TWO_D_L1, build_protected_bank
from repro.errors import ErrorInjector


def run_experiment_via_api() -> None:
    # 1. Declare what to run.  The spec is the complete identity of the
    #    experiment — same spec, same result, on any machine.
    spec = ExperimentSpec("fig3.coverage", backend="monte_carlo",
                          trials=4096, seed=2007)
    print(f"Spec: {spec.experiment} [{spec.backend}]  hash={spec.content_hash()[:16]}…")

    # 2. Run it through a session (workers/caching are session concerns;
    #    bump workers= for multi-process engine runs).
    session = Session(workers=1)
    result = session.run(spec)

    # 3. The Result is uniform and serializable: raw figure payload in
    #    .data, normalized series with Wilson CIs, JSON/CSV export.
    estimates = result.data_dict()["estimates"]
    print("Fig. 3 Monte Carlo coverage (P[event fully corrected], 95% CI):")
    for key, e in estimates.items():
        print(f"  {key:<16} {e['point']:.4f}  [{e['lower']:.4f}, {e['upper']:.4f}]")
    print(f"Serialized result: {len(result.to_json())} bytes of JSON, "
          f"{len(result.to_csv().splitlines()) - 1} CSV rows")
    # The same runs from the shell:
    #   python -m repro run fig3.coverage --trials 4096 --json out.json


def simulate_bank_recovery() -> None:
    # The API drives the same bit-accurate substrate you can poke directly.
    # Build a 2D-protected bank using the paper's L1 configuration:
    # EDC8 horizontal code, 4-way bit interleaving, 32 vertical parity rows.
    bank = build_protected_bank(TWO_D_L1, n_words=1024, name="demo-bank")
    print(f"\nBuilt {bank}")
    print(f"  rows: {bank.rows}, columns per row: {bank.columns}")
    print(f"  horizontal code: {bank.horizontal_code.name} "
          f"({bank.horizontal_code.geometry})")

    # Write random data into every word (each write performs the
    # read-before-write vertical parity update of Fig. 4(a)).
    rng = np.random.default_rng(0)
    reference = {}
    for word in range(bank.layout.n_words):
        data = rng.integers(0, 2, 64, dtype=np.uint8)
        reference[word] = data
        bank.write_word(word, data)
    print(f"Wrote {len(reference)} words "
          f"({bank.stats.read_before_writes} read-before-write operations)")

    # Inject a large clustered soft error: 32x32 bit flips.
    event = ErrorInjector(bank, seed=42).inject_cluster(32, 32)
    print(f"Injected a {event.label} at rows {event.rows[0]}..{event.rows[-1]}, "
          f"columns {event.columns[0]}..{event.columns[-1]}")

    # Read everything back.  The first read that hits the damage triggers
    # the 2D recovery process (Fig. 4(b)); all data comes back intact.
    mismatches = 0
    for word, expected in reference.items():
        outcome = bank.read_word(word)
        if not np.array_equal(outcome.data, expected):
            mismatches += 1
    print(f"Read back {len(reference)} words: {mismatches} mismatches")
    print(f"  recoveries: {bank.stats.recoveries}, "
          f"rows reconstructed: {bank.stats.recovered_rows}, "
          f"uncorrectable reads: {bank.stats.uncorrectable_reads}")
    assert mismatches == 0 and bank.stats.uncorrectable_reads == 0
    print("SUCCESS: the 32x32 clustered error was fully corrected.")


def main() -> None:
    run_experiment_via_api()
    simulate_bank_recovery()


if __name__ == "__main__":
    main()
