"""Quickstart: protect an SRAM bank with 2D error coding and survive a
32x32-bit clustered error.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import TWO_D_L1, build_protected_bank
from repro.errors import ErrorInjector


def main() -> None:
    # 1. Build a 2D-protected bank using the paper's L1 configuration:
    #    EDC8 horizontal code, 4-way bit interleaving, 32 vertical parity rows.
    bank = build_protected_bank(TWO_D_L1, n_words=1024, name="demo-bank")
    print(f"Built {bank}")
    print(f"  rows: {bank.rows}, columns per row: {bank.columns}")
    print(f"  horizontal code: {bank.horizontal_code.name} "
          f"({bank.horizontal_code.geometry})")

    # 2. Write random data into every word (each write performs the
    #    read-before-write vertical parity update of Fig. 4(a)).
    rng = np.random.default_rng(0)
    reference = {}
    for word in range(bank.layout.n_words):
        data = rng.integers(0, 2, 64, dtype=np.uint8)
        reference[word] = data
        bank.write_word(word, data)
    print(f"Wrote {len(reference)} words "
          f"({bank.stats.read_before_writes} read-before-write operations)")

    # 3. Inject a large clustered soft error: 32x32 bit flips.
    event = ErrorInjector(bank, seed=42).inject_cluster(32, 32)
    print(f"Injected a {event.label} at rows {event.rows[0]}..{event.rows[-1]}, "
          f"columns {event.columns[0]}..{event.columns[-1]}")

    # 4. Read everything back.  The first read that hits the damage triggers
    #    the 2D recovery process (Fig. 4(b)); all data comes back intact.
    mismatches = 0
    for word, expected in reference.items():
        outcome = bank.read_word(word)
        if not np.array_equal(outcome.data, expected):
            mismatches += 1
    print(f"Read back {len(reference)} words: {mismatches} mismatches")
    print(f"  recoveries: {bank.stats.recoveries}, "
          f"rows reconstructed: {bank.stats.recovered_rows}, "
          f"uncorrectable reads: {bank.stats.uncorrectable_reads}")
    assert mismatches == 0 and bank.stats.uncorrectable_reads == 0
    print("SUCCESS: the 32x32 clustered error was fully corrected.")


if __name__ == "__main__":
    main()
