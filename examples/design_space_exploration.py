"""Domain example: design-space exploration for a cache protection scheme.

A designer wants 32x32-bit clustered-error coverage for a 64kB L1 data
cache and a 4MB L2, and needs to pick between scaling conventional ECC +
bit interleaving or adopting 2D error coding.  This script reproduces the
paper's decision data: coverage, storage, latency, dynamic power, the
expected IPC cost, and the yield benefit of SECDED-based hard-error repair.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.cmp import PROTECTION_SCENARIOS, fat_cmp_config, compare_protection
from repro.core import (
    analyze_scheme,
    fig7_scheme_comparison,
    fig8_yield,
    l1_schemes,
)
from repro.workloads import get_profile


def show_coverage_and_storage() -> None:
    print("=== Coverage and storage (256x256-bit bank) ===")
    for scheme in l1_schemes().values():
        report = analyze_scheme(scheme, array_rows=256, array_data_columns=256)
        print(
            f"  {scheme.name:<26} correctable cluster "
            f"{report.correctable_rows:>3} x {report.correctable_columns:<3}   "
            f"storage overhead {100 * report.storage_overhead:5.1f}%"
        )


def show_vlsi_costs() -> None:
    print("\n=== Relative VLSI cost at 32x32 coverage (SECDED+Intv2 = 100%) ===")
    for cache_label, costs in fig7_scheme_comparison().items():
        print(f"  {cache_label}:")
        for cost in costs.values():
            print(
                f"    {cost.name:<26} area {cost.code_area:6.0f}%   "
                f"latency {cost.coding_latency:5.0f}%   power {cost.dynamic_power:6.0f}%"
            )


def show_performance_cost() -> None:
    print("\n=== Expected IPC cost of 2D protection (fat CMP, OLTP) ===")
    cmp_cfg = fat_cmp_config()
    profile = get_profile("OLTP")
    for key in ("l1", "l1_ps", "l2", "l1_ps_l2"):
        comparison = compare_protection(
            cmp_cfg, profile, PROTECTION_SCENARIOS[key], n_cycles=4_000, seed=11
        )
        print(f"  {PROTECTION_SCENARIOS[key].label:<42} {comparison.ipc_loss_percent:5.2f}% IPC loss")


def show_yield_benefit() -> None:
    print("\n=== Yield of a 16MB L2 when ECC repairs single-bit hard faults ===")
    curves = fig8_yield((0, 1000, 2000, 3000, 4000))
    cells = [int(c) for c in curves.pop("failing_cells")]
    header = "  failing cells:          " + "  ".join(f"{c:>6}" for c in cells)
    print(header)
    for label, values in curves.items():
        print(f"  {label:<24}" + "  ".join(f"{100 * v:5.1f}%" for v in values))


def main() -> None:
    show_coverage_and_storage()
    show_vlsi_costs()
    show_performance_cost()
    show_yield_benefit()
    print("\nConclusion: 2D coding reaches 32x32 coverage at a fraction of the")
    print("area/power of scaled conventional ECC, for a low single-digit IPC cost.")


if __name__ == "__main__":
    main()
