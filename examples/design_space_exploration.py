"""Domain example: design-space exploration for a cache protection scheme.

A designer wants 32x32-bit clustered-error coverage for a 64kB L1 data
cache and a 4MB L2, and needs to pick between scaling conventional ECC +
bit interleaving or adopting 2D error coding.  This script reproduces the
paper's decision data — coverage, storage, latency, dynamic power, the
expected IPC cost, and the yield benefit of SECDED-based hard-error
repair — entirely through the declarative experiment API: every number
comes from ``session.run(ExperimentSpec(...))``.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.api import ExperimentSpec, Session

SESSION = Session()


def show_coverage_and_storage() -> None:
    print("=== Coverage and storage (256x256-bit bank) ===")
    reports = SESSION.run(ExperimentSpec("fig3.coverage")).data_dict()
    for report in reports.values():
        print(
            f"  {report['scheme_name']:<26} correctable cluster "
            f"{report['correctable_rows']:>3} x {report['correctable_columns']:<3}   "
            f"storage overhead {100 * report['storage_overhead']:5.1f}%"
        )


def show_vlsi_costs() -> None:
    print("\n=== Relative VLSI cost at 32x32 coverage (SECDED+Intv2 = 100%) ===")
    costs_per_cache = SESSION.run(ExperimentSpec("fig7.schemes")).data_dict()
    for cache_label, costs in costs_per_cache.items():
        print(f"  {cache_label}:")
        for cost in costs.values():
            print(
                f"    {cost['name']:<26} area {cost['code_area']:6.0f}%   "
                f"latency {cost['coding_latency']:5.0f}%   "
                f"power {cost['dynamic_power']:6.0f}%"
            )


def show_performance_cost() -> None:
    print("\n=== Expected IPC cost of 2D protection (fat CMP) ===")
    spec = ExperimentSpec(
        "fig5.performance", trials=24, seed=11, params={"n_cycles": 4_000}
    )
    data = SESSION.run(spec).data_dict()
    losses = data["ipc_loss"]["fat"]["OLTP"]
    intervals = data["intervals"]["fat"]["OLTP"]
    labels = {
        "l1": "Protected L1 D-cache",
        "l1_ps": "Protected L1 D-cache + port stealing",
        "l2": "Protected L2",
        "l1_ps_l2": "Protected L1 (PS) + protected L2",
    }
    for key, label in labels.items():
        half = (intervals[key]["upper"] - intervals[key]["lower"]) / 2
        print(
            f"  {label:<42} {losses[key]:5.2f} ± {half:4.2f}% IPC loss "
            f"(OLTP, {data['trials']} trials)"
        )


def show_perf_sensitivity() -> None:
    print("\n=== Port-stealing sensitivity: loss vs store-queue depth ===")
    spec = ExperimentSpec(
        "sweep.perf_sensitivity",
        trials=16,
        params={"n_cycles": 3_000, "store_queue": [2, 8, 64],
                "l1_ports": [2], "burstiness": [4.0]},
    )
    data = SESSION.run(spec).data_dict()
    depths = data["store_queue"]
    print("  store-queue entries:  " + "  ".join(f"{d:>6}" for d in depths))
    for ports, per_burst in data["loss"].items():
        for burst, points in per_burst.items():
            row = "  ".join(f"{points[str(d)]['mean']:5.2f}%" for d in depths)
            print(f"  {data['cmp']} CMP, {ports} ports, burstiness {burst}:  {row}")
    print("  (a shallower store queue bounds the deferred-read queue, so")
    print("   more read-before-write reads issue as contending accesses)")


def show_mbu_cluster_sweep() -> None:
    print("\n=== Coverage vs MBU cluster size x interleaving degree ===")
    spec = ExperimentSpec(
        "sweep.mbu_cluster",
        trials=512,
        seed=77,
        params={"cluster_sizes": [1, 2, 4, 8, 16, 32], "degrees": [1, 2, 4]},
    )
    data = SESSION.run(spec).data_dict()
    sizes = data["cluster_sizes"]
    print("  cluster size:      " + "  ".join(f"{s:>5}" for s in sizes))
    for degree in data["degrees"]:
        points = data["coverage"][str(degree)]
        row = "  ".join(f"{100 * points[str(s)]['point']:4.0f}%" for s in sizes)
        print(f"  2D EDC8, D={degree}:      {row}")
    print("  (2D vertical EDC32 recovers any cluster within 32 rows; the")
    print("   horizontal detection width scales with the interleave degree)")


def show_yield_benefit() -> None:
    print("\n=== Yield of a 16MB L2 when ECC repairs single-bit hard faults ===")
    spec = ExperimentSpec(
        "fig8.yield", params={"failing_cells": [0, 1000, 2000, 3000, 4000]}
    )
    curves = SESSION.run(spec).data_dict()
    cells = [int(c) for c in curves.pop("failing_cells")]
    header = "  failing cells:          " + "  ".join(f"{c:>6}" for c in cells)
    print(header)
    for label, values in curves.items():
        print(f"  {label:<24}" + "  ".join(f"{100 * v:5.1f}%" for v in values))


def main() -> None:
    show_coverage_and_storage()
    show_vlsi_costs()
    show_performance_cost()
    show_perf_sensitivity()
    show_mbu_cluster_sweep()
    show_yield_benefit()
    print("\nConclusion: 2D coding reaches 32x32 coverage at a fraction of the")
    print("area/power of scaled conventional ECC, for a low single-digit IPC cost.")


if __name__ == "__main__":
    main()
