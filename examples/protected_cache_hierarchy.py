"""Domain example: a small CMP cache hierarchy with 2D-protected L1s and L2
serving an OLTP-like synthetic workload while errors rain on the arrays.

This exercises the full functional stack: synthetic trace generation,
per-core L1 data caches, a shared L2, 2D-protected data banks, and the
recovery path — and verifies end-to-end data integrity.  The closing
step cross-checks the L2's protection statistically through the unified
experiment API (``Session.run`` of a ``sweep.mc_coverage`` spec).

Run with:  python examples/protected_cache_hierarchy.py
"""

from __future__ import annotations

import numpy as np

from repro.api import ExperimentSpec, Session
from repro.cache import CacheConfig, CacheHierarchy, ProtectedCacheController
from repro.coding import InterleavedParityCode, SecdedCode
from repro.errors import ErrorInjector
from repro.workloads import AccessType, TraceGenerator, get_profile


def build_hierarchy(n_cores: int) -> CacheHierarchy:
    l1_config = CacheConfig(
        name="L1D", size_bytes=8 * 1024, associativity=2, line_bytes=64, n_ports=2
    )
    l2_config = CacheConfig(
        name="L2", size_bytes=64 * 1024, associativity=8, line_bytes=64, n_banks=4
    )
    l1s = [
        ProtectedCacheController(
            l1_config, InterleavedParityCode(64, 8), word_bits=64, interleave_degree=4
        )
        for _ in range(n_cores)
    ]
    # The L2 uses a SECDED horizontal code so it can also absorb single-bit
    # manufacture-time hard faults in-line (the yield path of Section 5.2).
    l2 = ProtectedCacheController(
        l2_config, SecdedCode(64), word_bits=64, interleave_degree=4
    )
    return CacheHierarchy(l1s, l2)


def main() -> None:
    n_cores = 2
    hierarchy = build_hierarchy(n_cores)
    profile = get_profile("OLTP")
    trace = TraceGenerator(profile, n_cores=n_cores, seed=1).generate(2_000)
    print(f"Generated {len(trace)} OLTP-like accesses over 2,000 cycles")

    rng = np.random.default_rng(7)
    reference: dict[int, np.ndarray] = {}
    errors_injected = 0

    for i, access in enumerate(trace):
        address = access.address % (1 << 20)  # keep the footprint compact
        if access.kind is AccessType.DATA_WRITE:
            data = rng.integers(0, 256, 64, dtype=np.uint8)
            hierarchy.store(access.core, address, data)
            reference[hierarchy.l2_cache.config.block_address(address)] = data
        else:
            hierarchy.load(access.core, address)

        # Periodically strike the arrays with multi-bit soft errors.
        if i % 500 == 250:
            ErrorInjector(hierarchy.l1_caches[0].banks[0], seed=i).inject_cluster(8, 8)
            ErrorInjector(hierarchy.l2_cache.banks[0], seed=i + 1).inject_cluster(16, 16)
            errors_injected += 2

    # Verify every value we wrote is still what we read.
    mismatches = 0
    for address, expected in reference.items():
        if not np.array_equal(hierarchy.load(0, address), expected):
            mismatches += 1

    stats = hierarchy.stats
    print(f"Injected {errors_injected} multi-bit error events")
    print(f"Loads: {stats.loads}, stores: {stats.stores}, "
          f"L1 hit rate: {stats.l1_hits / max(stats.l1_hits + stats.l1_misses, 1):.2f}")
    print(f"L1 recoveries: {sum(c.total_recoveries() for c in hierarchy.l1_caches)}, "
          f"L2 recoveries: {hierarchy.l2_cache.total_recoveries()}, "
          f"L2 inline corrections: {hierarchy.l2_cache.total_horizontal_corrections()}")
    print(f"Verified {len(reference)} dirty lines: {mismatches} mismatches")
    assert mismatches == 0
    print("SUCCESS: data integrity maintained through all injected errors.")

    # Finally, quantify the same protection statistically: the unified
    # API runs the vectorized engine over thousands of random single-cell
    # hard faults on the paper's 2D L1 scheme (the configuration whose
    # bank absorbed the clusters above).
    spec = ExperimentSpec(
        "sweep.mc_coverage",
        trials=2048,
        seed=9,
        params={"scheme": "2d_edc8_edc32", "model": "random_cells", "n_cells": 1},
    )
    estimate = Session().run(spec).data_dict()["estimate"]
    print(
        f"Engine cross-check — P[single hard fault fully corrected] = "
        f"{estimate['point']:.4f} "
        f"[{estimate['lower']:.4f}, {estimate['upper']:.4f}] @95%"
    )
    assert estimate["point"] == 1.0


if __name__ == "__main__":
    main()
